#ifndef KOKO_SERVE_QUERY_SERVICE_H_
#define KOKO_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "koko/engine.h"
#include "koko/score_cache.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace koko {

/// \brief FIFO admission control for concurrent query execution.
///
/// At most `max_inflight` callers hold admission at once; further callers
/// wait in ticket order (strict FIFO — no barging), and when `max_queue`
/// callers are already waiting, new arrivals are rejected immediately
/// (back-pressure instead of unbounded pile-up). `Shutdown()` drains the
/// queue for teardown: every blocked waiter wakes up rejected and every
/// later Enter() rejects immediately, while already-admitted callers finish
/// normally (their paired Exit() still runs). Separated from QueryService
/// so the admission semantics are unit-testable without timing-dependent
/// query execution.
///
/// Every counter is KOKO_GUARDED_BY(mu_); use `counters()` for a coherent
/// snapshot — reading the individual accessors in sequence can tear across
/// concurrent admissions (e.g. observe a peak_inflight newer than the
/// admitted count it came from).
class AdmissionQueue {
 public:
  /// Coherent counter snapshot, taken under one lock acquisition.
  /// Invariants that hold for every snapshot (and that a torn multi-call
  /// read can violate): peak_inflight <= admitted, inflight <= max_inflight,
  /// peak_waiting <= admitted + rejected.
  struct Counters {
    size_t inflight = 0;
    size_t waiting = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t peak_inflight = 0;
    uint64_t peak_waiting = 0;
  };

  AdmissionQueue(size_t max_inflight, size_t max_queue)
      : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
        max_queue_(max_queue) {}

  /// Blocks until admitted; returns false (rejection) when the caller
  /// would have to wait behind `max_queue` queued callers, or when the
  /// queue is (or becomes, while waiting) shut down. Every true return
  /// must be paired with Exit().
  bool Enter() KOKO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (shutdown_) {
      ++rejected_;
      return false;
    }
    const bool immediate = waiting_ == 0 && inflight_ < max_inflight_;
    if (!immediate && waiting_ >= max_queue_) {
      ++rejected_;
      return false;
    }
    const uint64_t ticket = next_ticket_++;
    ++waiting_;
    // peak_waiting counts callers that actually blocked; an uncontended
    // caller passes straight through.
    if (!immediate) {
      peak_waiting_ = std::max(peak_waiting_, static_cast<uint64_t>(waiting_));
    }
    while (!shutdown_ &&
           !(ticket == serve_ticket_ && inflight_ < max_inflight_)) {
      cv_.Wait(mu_);
    }
    --waiting_;
    ++serve_ticket_;
    if (shutdown_) {
      // Drained while waiting: hand the turn to the next ticket (every
      // waiter takes this path, so serve order no longer matters) and
      // report the caller rejected, never admitted.
      ++rejected_;
      cv_.NotifyAll();
      return false;
    }
    ++inflight_;
    ++admitted_;
    peak_inflight_ = std::max(peak_inflight_, static_cast<uint64_t>(inflight_));
    // The next ticket in line may be admittable too while inflight_ is
    // still below the bound.
    cv_.NotifyAll();
    return true;
  }

  void Exit() KOKO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    --inflight_;
    cv_.NotifyAll();
  }

  /// Rejects every current waiter and every future Enter(). Idempotent;
  /// safe to call concurrently with Enter/Exit from any thread. Admitted
  /// callers are unaffected — wait for inflight() to reach zero to drain.
  void Shutdown() KOKO_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.NotifyAll();
  }

  bool is_shutdown() const KOKO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return shutdown_;
  }

  Counters counters() const KOKO_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Counters c;
    c.inflight = inflight_;
    c.waiting = waiting_;
    c.admitted = admitted_;
    c.rejected = rejected_;
    c.peak_inflight = peak_inflight_;
    c.peak_waiting = peak_waiting_;
    return c;
  }

  size_t inflight() const { return counters().inflight; }
  size_t waiting() const { return counters().waiting; }
  uint64_t admitted() const { return counters().admitted; }
  uint64_t rejected() const { return counters().rejected; }
  uint64_t peak_inflight() const { return counters().peak_inflight; }
  uint64_t peak_waiting() const { return counters().peak_waiting; }

 private:
  const size_t max_inflight_;
  const size_t max_queue_;
  mutable Mutex mu_;
  CondVar cv_;
  uint64_t next_ticket_ KOKO_GUARDED_BY(mu_) = 0;   ///< Next ticket out.
  uint64_t serve_ticket_ KOKO_GUARDED_BY(mu_) = 0;  ///< First in line.
  size_t inflight_ KOKO_GUARDED_BY(mu_) = 0;
  size_t waiting_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t peak_inflight_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t peak_waiting_ KOKO_GUARDED_BY(mu_) = 0;
  bool shutdown_ KOKO_GUARDED_BY(mu_) = false;
};

/// \brief Concurrent query serving over one shared engine (the server core).
///
/// The paper evaluates Koko one query at a time; heavy multi-user traffic
/// needs many concurrent queries over one shared index. QueryService turns
/// the batch engine into that server core:
///
///  * **Admission queue.** At most `max_inflight` queries execute at once;
///    further callers wait FIFO, and beyond `max_queue` waiters new calls
///    are rejected with `Unavailable` (back-pressure instead of pile-up).
///  * **One shared ThreadPool.** Every admitted query runs its parallel
///    sections (shard-parallel DPLI, the extract fan-out) as fork/join
///    slots on the service's pool via `EngineOptions::pool`, replacing the
///    one-pool-per-query model — thread count is a property of the server,
///    not of the query. Queries execute on their caller's thread (or a pool
///    worker for `Submit`), which always participates in its own sections,
///    so a saturated pool delays queries but never deadlocks them.
///  * **Persistent per-shard score caches.** One `ScoreCache` (lock-striped
///    into cache shards) survives across queries via
///    `EngineOptions::score_cache`, so repeated workloads hit warm
///    aggregate scores instead of re-scoring (doc, clause, value) triples.
///  * **Persistent plan cache.** One `PlanCache` survives across queries
///    via `EngineOptions::plan_cache`, so repeated query shapes reuse the
///    compiled clause plan (atom order + per-clause representations) per
///    shard instead of re-deriving it from index statistics. Both caches'
///    hit/miss counters surface in `Stats`.
///  * **Streaming.** The `Run(..., sink)` overloads deliver rows to the
///    caller's sink as extraction produces them (ascending-sid order),
///    and a finite `engine.max_rows` terminates the candidate scan early
///    once top-k is provably satisfied — under full admission-controlled
///    concurrency, with rows still byte-identical to the batch path.
///
/// **Determinism contract:** for any query, `Run` returns byte-identical
/// rows (docs, sids, values, scores) to a serial single-query
/// `Engine::Execute`, for every (index shard count, num_shards,
/// num_threads, max_inflight, concurrent client count) combination. The
/// engine's parallel sections are deterministic by construction and score
/// caching is value-preserving, so concurrency changes only scheduling,
/// never results.
///
/// Thread-safety: all public methods may be called from any number of
/// threads. The borrowed Engine must outlive the service and must not be
/// reconfigured (set_document_store / AddOntologySet) while queries run.
/// The engine's index may be a zero-copy (`LoadMode::kMap`) load: mapped
/// postings are immutable shared state held alive by the index itself, so
/// concurrent queries read them without synchronization and the service
/// needs no awareness of the load mode (see
/// query_service_test's ConcurrentClientsOverMappedIndexMatchSerial).
/// See examples/serve_queries.cpp for an end-to-end snippet, including
/// serving off an mmap-loaded index.
class QueryService {
 public:
  struct Options {
    /// Workers in the shared pool (0 = one per hardware thread).
    size_t num_threads = 0;
    /// Queries executing at once; further callers wait FIFO. Min 1.
    size_t max_inflight = 4;
    /// Callers allowed to wait for admission; beyond this, Run/Submit fail
    /// fast with Unavailable. Default: unbounded.
    size_t max_queue = SIZE_MAX;
    /// Lock stripes (shards) of the persistent score cache. 0 = pick from
    /// the engine's index shard count (min 16).
    size_t cache_shards = 0;
    /// Per-query execution defaults. `pool`, `score_cache`, and
    /// `num_threads` are overridden by the service; the rest (use_gsp,
    /// use_index, use_descriptors, max_rows, num_shards) apply to every
    /// query run through the service.
    EngineOptions engine;
  };

  struct Stats {
    uint64_t admitted = 0;   ///< Queries that entered execution.
    uint64_t completed = 0;  ///< Queries that finished (ok or error).
    uint64_t rejected = 0;   ///< Queries turned away (queue full).
    uint64_t peak_inflight = 0;
    uint64_t peak_waiting = 0;
    /// Cross-query cache effectiveness (cumulative since construction) —
    /// the figures BENCH_serve.json records per workload.
    ScoreCache::Stats score_cache;
    PlanCache::Stats plan_cache;
  };

  /// Per-request option overrides, applied on top of `Options::engine` for
  /// one Run call. This is the wire front end's hook (src/net/server.cpp):
  /// a network request carries its own row cap and planner toggle, while
  /// everything structural (pool, caches, thread counts) stays
  /// service-owned. Unset fields inherit the service defaults.
  struct RunOverrides {
    std::optional<size_t> max_rows;
    std::optional<bool> use_planner;
  };

  /// `engine` is borrowed and must outlive the service. `index_shards` is
  /// only used to size the score cache's stripes; pass
  /// `sharded->num_shards()` when serving a sharded index.
  QueryService(const Engine* engine, const Options& options,
               size_t index_shards = 0);

  /// Blocks for admission, executes on the calling thread (parallel
  /// sections on the shared pool), returns the query's result. Rejects
  /// with Unavailable when `max_queue` callers are already waiting.
  Result<QueryResult> Run(std::string_view query_text);
  Result<QueryResult> Run(const Query& query);

  /// Streaming variants: `sink` receives every result row as extraction
  /// produces it (ascending-sid order, invoked on the executing thread,
  /// before later candidates are evaluated), and the returned result still
  /// carries the full row set. With a finite `engine.max_rows` the
  /// candidate scan additionally terminates early once the row budget is
  /// provably satisfied. `sink` must stay alive until the call returns.
  Result<QueryResult> Run(std::string_view query_text, const RowSink& sink);
  Result<QueryResult> Run(const Query& query, const RowSink& sink);

  /// Overridden variant: same admission/execution path with `overrides`
  /// layered onto the service's engine options (a finite max_rows implies
  /// streaming early termination, matching EngineOptions' contract). Pass
  /// an empty RowSink for non-streaming callers.
  Result<QueryResult> Run(const Query& query, const RunOverrides& overrides,
                          const RowSink& sink);

  /// Asynchronous variant: the query is parsed and executed on a pool
  /// worker (still subject to admission). Collect outstanding futures
  /// before destroying the service.
  std::future<Result<QueryResult>> Submit(std::string query_text);

  ScoreCache& score_cache() { return *score_cache_; }
  const ScoreCache& score_cache() const { return *score_cache_; }
  PlanCache& plan_cache() { return *plan_cache_; }
  const PlanCache& plan_cache() const { return *plan_cache_; }
  ThreadPool& pool() { return *pool_; }
  /// Exposed for load-shedding introspection and deterministic tests.
  AdmissionQueue& admission() { return admission_; }
  const AdmissionQueue& admission() const { return admission_; }

  Stats stats() const;

 private:
  const Engine* engine_;
  Options options_;
  std::unique_ptr<ScoreCache> score_cache_;
  std::unique_ptr<PlanCache> plan_cache_;
  AdmissionQueue admission_;
  std::atomic<uint64_t> completed_{0};

  /// Declared last: the pool's destructor drains queued Submit() tasks,
  /// which touch every other member — they must still be alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace koko

#endif  // KOKO_SERVE_QUERY_SERVICE_H_

#ifndef KOKO_SERVE_BATCHER_H_
#define KOKO_SERVE_BATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "koko/ast.h"
#include "koko/engine.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace koko {

/// \brief Cross-request batch admission: concurrently-arriving requests
/// with equal execution fingerprints share one engine execution.
///
/// A production front end sees bursts of identical queries (dashboards,
/// retried clients, fan-out from one upstream). Executing each copy pays
/// the full DPLI + plan + score pipeline again for byte-identical rows.
/// BatchExecutor coalesces them: the first arrival of a fingerprint becomes
/// the *leader* and executes normally (through the service's admission
/// queue); every request with the same fingerprint that arrives while the
/// leader is still executing becomes a *follower* — it blocks until the
/// leader finishes and then shares the leader's result (a shared_ptr, no
/// row copies), never touching admission or the engine. When the leader
/// completes, the group dissolves: the next arrival of that fingerprint
/// starts a fresh execution (caches make it cheap, and results must track
/// post-completion index/config changes).
///
/// **Parity contract.** Followers receive the leader's rows verbatim, so
/// batched results are trivially byte-identical to what the leader saw —
/// the contract therefore hinges on the fingerprint: two requests may only
/// share a fingerprint when their executions would be byte-identical.
/// `RequestFingerprint` hashes the canonical query text together with
/// every execution-relevant option (row cap, planner toggle). The row cap
/// in particular must be part of the key: a capped run truncates the
/// *pending* pre-filter row stream, so its rows are not in general a
/// prefix of the uncapped rows (see docs/WORKLOADS.md) — coalescing a
/// capped request into an uncapped execution would change its bytes.
/// tests/net_fuzz_test.cpp asserts the property over randomized concurrent
/// schedules with duplicated fingerprints.
///
/// Thread-safety: all methods may be called from any number of threads.
class BatchExecutor {
 public:
  struct Stats {
    uint64_t leaders = 0;    ///< Executions actually run.
    uint64_t followers = 0;  ///< Requests served from another's execution.
    uint64_t peak_group = 0;  ///< Largest group (leader + followers).
  };

  using ExecFn = std::function<Result<QueryResult>()>;

  struct Outcome {
    /// The group's shared result (never null). Errors coalesce too: a
    /// follower of a rejected leader sees the same Unavailable.
    std::shared_ptr<const Result<QueryResult>> result;
    bool follower = false;
  };

  /// Joins (or creates) the group for `fingerprint`. The leader invokes
  /// `exec` outside any executor lock; followers block until the leader's
  /// result is published.
  Outcome Run(uint64_t fingerprint, const ExecFn& exec);

  Stats stats() const KOKO_EXCLUDES(mu_);

 private:
  /// In-flight execution group. All members are accessed only while
  /// holding the executor's mu_ (the group never outlives the map entry
  /// except via the shared_ptr held by waiters already past the lookup).
  struct Group {
    std::shared_ptr<const Result<QueryResult>> result;  // set once, at done
    bool done = false;
    uint64_t members = 1;  // leader + joined followers
  };

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<uint64_t, std::shared_ptr<Group>> groups_
      KOKO_GUARDED_BY(mu_);
  uint64_t leaders_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t followers_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t peak_group_ KOKO_GUARDED_BY(mu_) = 0;
};

/// Execution fingerprint of one wire request: canonical query text (the
/// parsed AST printed back, so formatting differences coalesce) combined
/// with every option that can change the result bytes. `max_rows` 0 means
/// unlimited.
uint64_t RequestFingerprint(const Query& query, uint64_t max_rows,
                            bool use_planner);

}  // namespace koko

#endif  // KOKO_SERVE_BATCHER_H_

#include "replay/workloads.h"

#include <cstdio>
#include <string_view>
#include <utility>

#include "corpus/generators.h"
#include "koko/parser.h"
#include "koko/printer.h"
#include "util/hash.h"

namespace koko {
namespace replay {

namespace {

/// Per-class generator seed bases — the seed-era bench constants, so the
/// regenerated corpora share provenance with the original figures. The
/// caller's WorkloadOptions::seed is mixed in on top.
constexpr uint64_t kFig3Seed = 101;
constexpr uint64_t kFig4Seed = 202;
constexpr uint64_t kFig5Seed = 301;
constexpr uint64_t kFig7Seed = 601;
constexpr uint64_t kFig7QuerySeed = 611;
constexpr uint64_t kFig8Seed = 701;
constexpr uint64_t kFig8QuerySeed = 711;
constexpr uint64_t kTable1Seed = 802;
constexpr uint64_t kTable1QuerySeed = 801;

uint64_t MixSeed(uint64_t base, uint64_t user_seed) {
  return user_seed == 0 ? base : Mix64(base ^ Mix64(user_seed));
}

Status AppendTextQuery(Workload* workload, const std::string& name,
                       std::string text) {
  auto parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("workload query '" + name +
                                   "' no longer parses: " +
                                   parsed.status().ToString());
  }
  workload->queries.push_back({name, std::move(text), std::move(*parsed)});
  return Status::OK();
}

/// Samples `limit` elements evenly across [0, n) — the synthetic
/// benchmarks generate hundreds of queries spanning selectivity settings;
/// an even stride keeps every setting band represented in the replay mix.
std::vector<size_t> EvenSample(size_t n, size_t limit) {
  std::vector<size_t> picks;
  if (n == 0 || limit == 0) return picks;
  if (n <= limit) {
    for (size_t i = 0; i < n; ++i) picks.push_back(i);
    return picks;
  }
  for (size_t i = 0; i < limit; ++i) picks.push_back(i * n / limit);
  return picks;
}

Status BuildCafeWorkload(Workload* workload, const Pipeline& pipeline,
                         const WorkloadOptions& options, bool long_articles,
                         uint64_t seed_base) {
  CafeGenOptions gen;
  gen.num_articles = (long_articles ? 16 : 18) * options.scale;
  gen.long_articles = long_articles;
  gen.seed = MixSeed(seed_base, options.seed);
  LabeledCorpus blogs = GenerateCafeBlogs(gen);
  workload->corpus = pipeline.AnnotateCorpus(blogs.docs);
  const double thresholds[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  for (double t : thresholds) {
    if (workload->queries.size() >= options.queries_per_class) break;
    char name[32];
    std::snprintf(name, sizeof(name), "cafe_t%.1f", t);
    Status status = AppendTextQuery(workload, name, CafeQueryText(t));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status BuildWnutWorkload(Workload* workload, const Pipeline& pipeline,
                         const WorkloadOptions& options) {
  TweetGenOptions gen;
  gen.num_tweets = 120 * options.scale;
  gen.seed = MixSeed(kFig4Seed, options.seed);
  TweetCorpus tweets = GenerateTweets(gen);
  workload->corpus = pipeline.AnnotateCorpus(tweets.docs);
  const double thresholds[] = {0.2, 0.4, 0.6, 0.8};
  for (double t : thresholds) {
    if (workload->queries.size() >= options.queries_per_class) break;
    char name[32];
    std::snprintf(name, sizeof(name), "team_t%.1f", t);
    Status status = AppendTextQuery(workload, name, TweetTeamQueryText(t));
    if (!status.ok()) return status;
  }
  for (double t : thresholds) {
    if (workload->queries.size() >= options.queries_per_class) break;
    char name[32];
    std::snprintf(name, sizeof(name), "facility_t%.1f", t);
    Status status = AppendTextQuery(workload, name, TweetFacilityQueryText(t));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void BuildTreeBenchQueries(Workload* workload, const WorkloadOptions& options,
                           uint64_t query_seed) {
  TreeBenchOptions bench;
  bench.queries_per_setting = 1;
  bench.seed = MixSeed(query_seed, options.seed);
  auto benchmark = GenerateSyntheticTreeBenchmark(workload->corpus, bench);
  for (size_t i : EvenSample(benchmark.size(), options.queries_per_class)) {
    const TreeBenchQuery& q = benchmark[i];
    Query query = QueryFromTreeBench(q, workload->name);
    std::string text = QueryToString(query);
    workload->queries.push_back({q.name, std::move(text), std::move(query)});
  }
}

void BuildSpanBenchQueries(Workload* workload, const WorkloadOptions& options,
                           uint64_t query_seed) {
  SpanBenchOptions bench;
  bench.queries_per_setting = 3;
  bench.seed = MixSeed(query_seed, options.seed);
  auto benchmark = GenerateSyntheticSpanBenchmark(workload->corpus, bench);
  for (size_t i : EvenSample(benchmark.size(), options.queries_per_class)) {
    SpanBenchQuery& q = benchmark[i];
    std::string text = QueryToString(q.query);
    workload->queries.push_back({q.name, std::move(text), std::move(q.query)});
  }
}

}  // namespace

const char* WorkloadClassName(WorkloadClass cls) {
  switch (cls) {
    case WorkloadClass::kFig3Cafe: return "fig3_cafe";
    case WorkloadClass::kFig4Wnut: return "fig4_wnut";
    case WorkloadClass::kFig5Descriptors: return "fig5_descriptors";
    case WorkloadClass::kFig7HappyDb: return "fig7_happydb";
    case WorkloadClass::kFig8Wiki: return "fig8_wiki";
    case WorkloadClass::kTable1Gsp: return "table1_gsp";
  }
  return "unknown";
}

std::vector<WorkloadClass> AllWorkloadClasses() {
  return {WorkloadClass::kFig3Cafe,         WorkloadClass::kFig4Wnut,
          WorkloadClass::kFig5Descriptors,  WorkloadClass::kFig7HappyDb,
          WorkloadClass::kFig8Wiki,         WorkloadClass::kTable1Gsp};
}

Result<Workload> BuildWorkload(WorkloadClass cls, const Pipeline& pipeline,
                               const WorkloadOptions& options) {
  Workload workload;
  workload.cls = cls;
  workload.name = WorkloadClassName(cls);
  Status status = Status::OK();
  switch (cls) {
    case WorkloadClass::kFig3Cafe:
      status = BuildCafeWorkload(&workload, pipeline, options,
                                 /*long_articles=*/false, kFig3Seed);
      break;
    case WorkloadClass::kFig4Wnut:
      status = BuildWnutWorkload(&workload, pipeline, options);
      break;
    case WorkloadClass::kFig5Descriptors:
      status = BuildCafeWorkload(&workload, pipeline, options,
                                 /*long_articles=*/true, kFig5Seed);
      break;
    case WorkloadClass::kFig7HappyDb: {
      HappyGenOptions gen;
      gen.num_moments = 160 * options.scale;
      gen.seed = MixSeed(kFig7Seed, options.seed);
      workload.corpus = pipeline.AnnotateCorpus(GenerateHappyMoments(gen));
      BuildTreeBenchQueries(&workload, options, kFig7QuerySeed);
      break;
    }
    case WorkloadClass::kFig8Wiki: {
      WikiGenOptions gen;
      gen.num_articles = 40 * options.scale;
      gen.seed = MixSeed(kFig8Seed, options.seed);
      workload.corpus = pipeline.AnnotateCorpus(GenerateWikiArticles(gen));
      BuildTreeBenchQueries(&workload, options, kFig8QuerySeed);
      break;
    }
    case WorkloadClass::kTable1Gsp: {
      HappyGenOptions gen;
      gen.num_moments = 120 * options.scale;
      gen.seed = MixSeed(kTable1Seed, options.seed);
      workload.corpus = pipeline.AnnotateCorpus(GenerateHappyMoments(gen));
      BuildSpanBenchQueries(&workload, options, kTable1QuerySeed);
      break;
    }
  }
  if (!status.ok()) return status;
  return workload;
}

Result<std::vector<Workload>> BuildAllWorkloads(const Pipeline& pipeline,
                                                const WorkloadOptions& options) {
  std::vector<Workload> workloads;
  for (WorkloadClass cls : AllWorkloadClasses()) {
    auto workload = BuildWorkload(cls, pipeline, options);
    if (!workload.ok()) return workload.status();
    workloads.push_back(std::move(*workload));
  }
  return workloads;
}

std::string CafeQueryText(double threshold) {
  char buf[4096];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "blogs" if ()
satisfying x
  (str(x) contains "Cafe" {1}) or
  (str(x) contains "Coffee" {1}) or
  (str(x) contains "Roasters" {1}) or
  (x ", a cafe" {1}) or
  (x [["serves coffee"]] {0.5}) or
  (x [["employs baristas"]] {0.5}) or
  ([["baristas of"]] x {0.45}) or
  (x [["hired a star barista"]] {0.5}) or
  (x [["pours delicious lattes"]] {0.45})
with threshold %f
excluding
  (str(x) matches "[a-z 0-9.&]+") or
  (str(x) matches "@[A-Za-z 0-9.]+") or
  (str(x) matches "[Cc]offee|[Cc]afe") or
  (str(x) matches "[A-Za-z 0-9.]*[Bb]arista [Cc]hampionship") or
  (str(x) matches "[A-Za-z 0-9.]*[Ff]est(ival)?") or
  (str(x) matches "[Ll]a Marzocco") or
  (str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Ss]t.?") or
  (str(x) in dict("GPE")) or
  (str(x) in dict("Person"))
)",
                threshold);
  return buf;
}

std::string TweetTeamQueryText(double threshold) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "tweets" if ()
satisfying x
  (x [["to host"]] {0.9}) or
  (x "vs" {0.9}) or
  ("vs" x {0.9}) or
  (x [["soccer"]] {0.9}) or
  ("Go" x {0.9}) or
  ("by" x {0.5})
with threshold %f
excluding
  (str(x) matches "[a-z 0-9.]+") or
  (str(x) in dict("GPE"))
)",
                threshold);
  return buf;
}

std::string TweetFacilityQueryText(double threshold) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "tweets" if ()
satisfying x
  ("at" x {1}) or
  ([["went to"]] x {0.8}) or
  ([["go to"]] x {0.8})
with threshold %f
excluding
  (str(x) contains "pm") or
  (str(x) contains "am") or
  (str(x) mentions "@") or
  (str(x) contains "today") or
  (str(x) contains "tomorrow") or
  (str(x) contains "tonight") or
  (str(x) matches "[a-z 0-9.]+")
)",
                threshold);
  return buf;
}

Query QueryFromTreeBench(const TreeBenchQuery& bench,
                         const std::string& source) {
  Query query;
  query.source = source;
  for (size_t i = 0; i < bench.paths.size(); ++i) {
    VarDef def;
    def.name = "v";
    def.name += std::to_string(i);
    def.kind = VarDef::Kind::kNode;
    def.path = bench.paths[i];
    query.defs.push_back(std::move(def));
  }
  query.outputs.push_back({"v0", "Str"});
  return query;
}

namespace {

void MixBytes(uint64_t* h, const void* data, size_t size) {
  *h = Fnv1a64(
      std::string_view(static_cast<const char*>(data), size), *h);
}

template <typename T>
void MixPod(uint64_t* h, T value) {
  MixBytes(h, &value, sizeof(value));
}

}  // namespace

uint64_t RowDigest(const std::vector<ResultRow>& rows) {
  uint64_t h = 0xcbf29ce484222325ULL;
  MixPod(&h, static_cast<uint64_t>(rows.size()));
  for (const ResultRow& row : rows) {
    MixPod(&h, row.doc);
    MixPod(&h, row.sid);
    MixPod(&h, static_cast<uint64_t>(row.values.size()));
    for (const std::string& value : row.values) {
      MixPod(&h, static_cast<uint64_t>(value.size()));
      MixBytes(&h, value.data(), value.size());
    }
    MixPod(&h, static_cast<uint64_t>(row.scores.size()));
    for (double score : row.scores) MixPod(&h, score);
  }
  return h;
}

uint64_t RowDigest(const QueryResult& result) { return RowDigest(result.rows); }

std::string DigestHex(uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace replay
}  // namespace koko

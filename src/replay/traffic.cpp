#include "replay/traffic.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/rng.h"

namespace koko {
namespace replay {

namespace {

using Clock = std::chrono::steady_clock;

/// One slot of the deterministic schedule.
struct Slot {
  size_t target = 0;
  size_t query = 0;
  /// Scheduled arrival offset from phase start (0 in closed-loop mode).
  double arrival_seconds = 0;
};

/// What one executed slot produced. Each record is written by exactly one
/// worker (slots are claimed off an atomic cursor), so the vector needs no
/// locking.
struct SlotRecord {
  bool error = false;
  bool digest_mismatch = false;
  bool early_terminated = false;
  size_t rows = 0;
  uint64_t scanned_candidates = 0;
  uint64_t candidate_sentences = 0;
  bool planned = false;
  uint64_t atoms_block_inplace = 0;
  uint64_t atoms_decode_gallop = 0;
  uint64_t semi_join_paths = 0;
  uint64_t quintuple_paths = 0;
  double latency_ms = 0;
};

std::vector<Slot> BuildSchedule(const std::vector<ReplayTarget>& targets,
                                const TrafficOptions& options) {
  Rng rng(options.seed);
  std::vector<Slot> schedule;
  schedule.reserve(options.queries);
  double arrival = 0;
  for (size_t i = 0; i < options.queries; ++i) {
    Slot slot;
    slot.target = rng.Uniform(targets.size());
    const Workload& workload = *targets[slot.target].workload;
    if (workload.queries.empty()) continue;
    slot.query = rng.Uniform(workload.queries.size());
    if (options.arrival == ArrivalProcess::kOpen) {
      // Exponential inter-arrival gap (Poisson process). Clamp the uniform
      // away from 0 so the log stays finite.
      double u = rng.UniformDouble();
      if (u < 1e-12) u = 1e-12;
      arrival += -std::log(u) / options.open_rate_qps;
      slot.arrival_seconds = arrival;
    }
    schedule.push_back(slot);
  }
  return schedule;
}

void RunSlot(const ReplayTarget& target, size_t query_index,
             SlotRecord* record) {
  const WorkloadQuery& query = target.workload->queries[query_index];
  auto result = target.service->Run(query.query);
  if (!result.ok()) {
    record->error = true;
    return;
  }
  record->rows = result->rows.size();
  record->early_terminated = result->early_terminated;
  record->scanned_candidates = result->scanned_candidates;
  record->candidate_sentences = result->candidate_sentences;
  if (result->plan != nullptr) {
    record->planned = true;
    for (const PlannedAtom& atom : result->plan->atoms) {
      if (atom.rep == IntersectRep::kBlockInPlace) {
        ++record->atoms_block_inplace;
      } else {
        ++record->atoms_decode_gallop;
      }
      if (atom.kind == PlannedAtom::Kind::kPath && atom.cross_index) {
        if (atom.use_semi_join) {
          ++record->semi_join_paths;
        } else {
          ++record->quintuple_paths;
        }
      }
    }
  }
  if (!target.expected_digests.empty()) {
    record->digest_mismatch =
        RowDigest(*result) != target.expected_digests[query_index];
  }
}

LatencyStats SummarizeLatencies(std::vector<double>* latencies_ms) {
  LatencyStats stats;
  if (latencies_ms->empty()) return stats;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const size_t n = latencies_ms->size();
  auto quantile = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(n - 1));
    return (*latencies_ms)[idx];
  };
  stats.p50_ms = quantile(0.5);
  stats.p99_ms = quantile(0.99);
  stats.max_ms = latencies_ms->back();
  double sum = 0;
  for (double v : *latencies_ms) sum += v;
  stats.mean_ms = sum / static_cast<double>(n);
  return stats;
}

PhaseReport RunPhase(const std::string& phase_name,
                     const std::vector<ReplayTarget>& targets,
                     const std::vector<Slot>& schedule,
                     const TrafficOptions& options) {
  std::vector<QueryService::Stats> before;
  before.reserve(targets.size());
  for (const ReplayTarget& target : targets) {
    before.push_back(target.service->stats());
  }

  std::vector<SlotRecord> records(schedule.size());
  std::atomic<size_t> cursor{0};
  const Clock::time_point phase_start = Clock::now();
  const bool open_loop = options.arrival == ArrivalProcess::kOpen;

  auto worker = [&]() {
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= schedule.size()) return;
      const Slot& slot = schedule[i];
      Clock::time_point issue = phase_start;
      if (open_loop) {
        // Latency is measured from the *scheduled* arrival: if every
        // client is busy past the arrival time, the wait shows up as
        // latency instead of silently stretching the schedule
        // (coordinated omission).
        issue = phase_start + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      slot.arrival_seconds));
        std::this_thread::sleep_until(issue);
      } else {
        issue = Clock::now();
      }
      RunSlot(targets[slot.target], slot.query, &records[i]);
      records[i].latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - issue)
              .count();
    }
  };

  const size_t num_workers = std::max<size_t>(1, options.clients);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();

  PhaseReport report;
  report.phase = phase_name;
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - phase_start).count();
  report.classes.resize(targets.size());
  std::vector<std::vector<double>> latencies(targets.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Slot& slot = schedule[i];
    const SlotRecord& record = records[i];
    ClassReport& cls = report.classes[slot.target];
    ++cls.queries;
    cls.rows += record.rows;
    if (record.error) ++cls.errors;
    if (record.digest_mismatch) ++cls.digest_mismatches;
    if (record.early_terminated) ++cls.early_terminated;
    cls.scanned_candidates += record.scanned_candidates;
    cls.candidate_sentences += record.candidate_sentences;
    if (record.planned) ++cls.planned_queries;
    cls.atoms_block_inplace += record.atoms_block_inplace;
    cls.atoms_decode_gallop += record.atoms_decode_gallop;
    cls.semi_join_paths += record.semi_join_paths;
    cls.quintuple_paths += record.quintuple_paths;
    latencies[slot.target].push_back(record.latency_ms);
  }
  for (size_t t = 0; t < targets.size(); ++t) {
    report.classes[t].name = targets[t].workload->name;
    report.classes[t].latency = SummarizeLatencies(&latencies[t]);
    const QueryService::Stats after = targets[t].service->stats();
    report.classes[t].score_cache_hits =
        after.score_cache.hits - before[t].score_cache.hits;
    report.classes[t].score_cache_misses =
        after.score_cache.misses - before[t].score_cache.misses;
    report.classes[t].plan_cache_hits =
        after.plan_cache.hits - before[t].plan_cache.hits;
    report.classes[t].plan_cache_misses =
        after.plan_cache.misses - before[t].plan_cache.misses;
  }
  return report;
}

}  // namespace

ReplayReport ReplayTraffic(const std::vector<ReplayTarget>& targets,
                           const TrafficOptions& options) {
  ReplayReport report;
  if (targets.empty()) return report;
  const std::vector<Slot> schedule = BuildSchedule(targets, options);
  report.cold = RunPhase("cold", targets, schedule, options);
  report.warm = RunPhase("warm", targets, schedule, options);
  return report;
}

}  // namespace replay
}  // namespace koko

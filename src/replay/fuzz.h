#ifndef KOKO_REPLAY_FUZZ_H_
#define KOKO_REPLAY_FUZZ_H_

#include <cstdint>
#include <vector>

#include "replay/workloads.h"
#include "text/document.h"

namespace koko {
namespace replay {

struct FuzzOptions {
  size_t count = 24;
  uint64_t seed = 1;
};

/// \brief Randomized query shapes over one corpus, for property tests.
///
/// Samples `count` executable queries whose shapes span every pruning path
/// the planner chooses between: single- and multi-path tree patterns
/// (sampled from real root-to-node paths of the corpus, so selectivity
/// varies naturally), span terms with literal/path/elastic atoms, and
/// entity queries with randomly weighted satisfying clauses over sampled
/// corpus words. Fully deterministic in (corpus, options): the parity
/// property — planner-on rows == planner-off rows, at every cap and shard
/// count — must hold for *any* seed, so a failing seed is a reproducible
/// counterexample to log.
std::vector<WorkloadQuery> GenerateFuzzQueries(const AnnotatedCorpus& corpus,
                                               const FuzzOptions& options);

}  // namespace replay
}  // namespace koko

#endif  // KOKO_REPLAY_FUZZ_H_

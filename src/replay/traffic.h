#ifndef KOKO_REPLAY_TRAFFIC_H_
#define KOKO_REPLAY_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "replay/workloads.h"
#include "serve/query_service.h"

namespace koko {
namespace replay {

/// One workload class wired to the service that will execute its queries.
/// The service owns the caches whose warm-up the phase comparison measures;
/// one service per class keeps the per-class cache hit rates honest (the
/// caches must never be shared across corpora anyway).
struct ReplayTarget {
  const Workload* workload = nullptr;
  QueryService* service = nullptr;
  /// Per-query expected row digests (index-aligned with workload->queries).
  /// Empty disables parity checking; otherwise every replayed query's rows
  /// are digested and mismatches are counted per class — the in-flight form
  /// of the golden-row regression net.
  std::vector<uint64_t> expected_digests;
};

/// How queries arrive.
enum class ArrivalProcess {
  /// `clients` workers each run the next scheduled query as soon as their
  /// previous one returns — measures capacity (latency excludes queueing
  /// by construction).
  kClosed,
  /// Queries arrive at Poisson times with rate `open_rate_qps`, regardless
  /// of completions; latency is measured from the *scheduled* arrival, so
  /// a backed-up service shows queueing delay instead of the coordinated
  /// omission a closed loop hides.
  kOpen,
};

struct TrafficOptions {
  ArrivalProcess arrival = ArrivalProcess::kClosed;
  /// Concurrent replay workers (closed loop: also the offered concurrency).
  size_t clients = 4;
  /// Queries per phase, mixed across every target.
  size_t queries = 96;
  /// kOpen only: mean arrival rate of the Poisson process.
  double open_rate_qps = 200.0;
  /// Schedule seed: which class/query each slot draws and the arrival
  /// gaps. One seed -> one schedule, replayed identically in both phases.
  uint64_t seed = 1;
};

struct LatencyStats {
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
};

/// Aggregated outcome of one workload class within one phase.
struct ClassReport {
  std::string name;
  size_t queries = 0;
  size_t rows = 0;
  size_t errors = 0;
  size_t digest_mismatches = 0;
  LatencyStats latency;
  /// Early-termination counters summed over the class's queries.
  size_t early_terminated = 0;
  uint64_t scanned_candidates = 0;
  uint64_t candidate_sentences = 0;
  /// Planner representation choices, summed over the executed plans'
  /// atoms (shard 0's plan per query; zero when the planner was off or a
  /// query bypassed the index).
  size_t planned_queries = 0;
  uint64_t atoms_block_inplace = 0;
  uint64_t atoms_decode_gallop = 0;
  uint64_t semi_join_paths = 0;
  uint64_t quintuple_paths = 0;
  /// Service cache deltas over this phase (end minus start counters).
  uint64_t score_cache_hits = 0;
  uint64_t score_cache_misses = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
};

struct PhaseReport {
  std::string phase;  ///< "cold" or "warm".
  double wall_seconds = 0;
  std::vector<ClassReport> classes;  ///< Index-aligned with the targets.
};

struct ReplayReport {
  PhaseReport cold;
  PhaseReport warm;

  size_t TotalErrors() const {
    size_t n = 0;
    for (const PhaseReport* phase : {&cold, &warm}) {
      for (const ClassReport& c : phase->classes) {
        n += c.errors + c.digest_mismatches;
      }
    }
    return n;
  }
};

/// \brief Replays one deterministic mixed-class schedule twice.
///
/// A schedule of `options.queries` slots is drawn from `options.seed`
/// (target and query per slot; arrival gaps in open-loop mode) and executed
/// twice against the same services: the first pass ("cold") starts from
/// whatever cache state the services were constructed with, the second
/// ("warm") repeats the identical schedule against the caches the first
/// pass populated — the difference isolates what the score/plan caches buy
/// on a repeating workload. Workers write into pre-sized per-slot record
/// slots claimed off one atomic cursor, so the replayer itself adds no
/// locking around the services under test. Determinism: the schedule (and
/// therefore every query's rows) is a pure function of the options; only
/// the measured latencies vary run to run.
ReplayReport ReplayTraffic(const std::vector<ReplayTarget>& targets,
                           const TrafficOptions& options);

}  // namespace replay
}  // namespace koko

#endif  // KOKO_REPLAY_TRAFFIC_H_

#include "replay/fuzz.h"

#include <string>
#include <utility>

#include "corpus/query_gen.h"
#include "koko/printer.h"
#include "util/rng.h"

namespace koko {
namespace replay {

namespace {

std::string SampleWord(const AnnotatedCorpus& corpus, Rng& rng) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    uint32_t sid = static_cast<uint32_t>(rng.Uniform(corpus.NumSentences()));
    const Sentence& s = corpus.sentence(sid);
    if (s.size() == 0) continue;
    const Token& t = s.tokens[rng.Uniform(static_cast<uint64_t>(s.size()))];
    if (t.pos == PosTag::kPunct || t.text.empty()) continue;
    return t.text;
  }
  return "the";
}

/// Random entity query with a randomly weighted satisfying clause — the
/// aggregate-phase shape (Figures 3-5) the synthetic benchmarks do not
/// cover. Conditions draw words from the corpus so the clause sometimes
/// scores real mentions and sometimes nothing; both sides of the parity
/// check are informative either way.
Query RandomEntityQuery(const AnnotatedCorpus& corpus, Rng& rng) {
  Query query;
  query.outputs.push_back({"x", "Entity"});
  query.source = "fuzz";
  SatisfyingClause clause;
  clause.var = "x";
  const int num_conditions = static_cast<int>(rng.UniformInt(2, 4));
  for (int i = 0; i < num_conditions; ++i) {
    SatCondition condition;
    condition.var = "x";
    condition.text = SampleWord(corpus, rng);
    condition.weight = 0.25 + 0.25 * static_cast<double>(rng.UniformInt(0, 3));
    switch (rng.UniformInt(0, 3)) {
      case 0: condition.kind = SatCondition::Kind::kFollowedBy; break;
      case 1: condition.kind = SatCondition::Kind::kPrecededBy; break;
      case 2: condition.kind = SatCondition::Kind::kNear; break;
      default: condition.kind = SatCondition::Kind::kStrContains; break;
    }
    clause.conditions.push_back(std::move(condition));
  }
  clause.threshold = 0.25 * static_cast<double>(rng.UniformInt(0, 4));
  query.satisfying.push_back(std::move(clause));
  if (rng.Bernoulli(0.3)) {
    SatCondition excluding;
    excluding.var = "x";
    excluding.kind = SatCondition::Kind::kStrMatches;
    excluding.text = "[a-z 0-9.]+";
    query.excluding.push_back(std::move(excluding));
  }
  return query;
}

}  // namespace

std::vector<WorkloadQuery> GenerateFuzzQueries(const AnnotatedCorpus& corpus,
                                               const FuzzOptions& options) {
  Rng rng(Mix64(options.seed ^ 0x666f7a7aULL));

  // Pools of benchmark-shaped queries, seeded off the fuzz seed so every
  // run with a new seed explores new shapes.
  TreeBenchOptions tree_options;
  tree_options.queries_per_setting = 1;
  tree_options.seed = rng.Next();
  auto tree_pool = GenerateSyntheticTreeBenchmark(corpus, tree_options);

  SpanBenchOptions span_options;
  span_options.queries_per_setting = 4;
  span_options.seed = rng.Next();
  auto span_pool = GenerateSyntheticSpanBenchmark(corpus, span_options);

  std::vector<WorkloadQuery> queries;
  queries.reserve(options.count);
  for (size_t i = 0; i < options.count; ++i) {
    WorkloadQuery out;
    const uint64_t pick = rng.Uniform(3);
    if (pick == 0 && !tree_pool.empty()) {
      const TreeBenchQuery& bench = rng.Choice(tree_pool);
      out.name = "fuzz_tree_" + bench.name;
      out.query = QueryFromTreeBench(bench, "fuzz");
    } else if (pick == 1 && !span_pool.empty()) {
      const SpanBenchQuery& bench = rng.Choice(span_pool);
      out.name = "fuzz_span_" + bench.name;
      out.query = bench.query;
    } else {
      out.name = "fuzz_entity_" + std::to_string(i);
      out.query = RandomEntityQuery(corpus, rng);
    }
    out.text = QueryToString(out.query);
    queries.push_back(std::move(out));
  }
  return queries;
}

}  // namespace replay
}  // namespace koko

#ifndef KOKO_REPLAY_WORKLOADS_H_
#define KOKO_REPLAY_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/query_gen.h"
#include "koko/ast.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"
#include "text/document.h"
#include "util/status.h"

namespace koko {
namespace replay {

/// \brief The paper's six evaluation workload shapes as replayable units.
///
/// Each figure/table of the paper's evaluation (§6) pairs one corpus
/// recipe with one query family. The seed reproduced them as isolated
/// bench binaries against the original monolithic engine; this library
/// regenerates the same shapes as `Workload` values — corpus plus a fixed,
/// named query list — so the traffic replayer (replay/traffic.h), the
/// golden-row parity suite (tests/workloads_test.cpp), and the fig benches
/// all draw from one deterministic source. Every generator is seeded, so a
/// (class, WorkloadOptions) pair always produces byte-identical corpora
/// and queries.
enum class WorkloadClass {
  kFig3Cafe,         ///< Short cafe-blog articles, Appendix-A cafe query.
  kFig4Wnut,         ///< WNUT-like tweets, team + facility queries.
  kFig5Descriptors,  ///< Long cafe-blog articles (descriptor ablation corpus).
  kFig7HappyDb,      ///< HappyDB-like moments, Synthetic Tree benchmark.
  kFig8Wiki,         ///< Wikipedia-like articles, Synthetic Tree benchmark.
  kTable1Gsp,        ///< HappyDB-like moments, Synthetic Span benchmark.
};

/// Stable lowercase identifier ("fig3_cafe", ...) used in golden files,
/// BENCH_workloads.json entry names, and ctest output.
const char* WorkloadClassName(WorkloadClass cls);

/// All six classes in declaration order.
std::vector<WorkloadClass> AllWorkloadClasses();

/// One replayable query: `text` is what QueryService::Run consumes, `query`
/// the parsed AST for direct Engine::Execute reference runs. The two are
/// interchangeable (QueryToString round-trips), kept both ways so neither
/// path pays a parse or print in the hot loop.
struct WorkloadQuery {
  std::string name;
  std::string text;
  Query query;
};

struct WorkloadOptions {
  /// Corpus size multiplier. 1 — the default — yields test-sized corpora
  /// (tens of documents per class); benches pass larger scales.
  int scale = 1;
  /// Upper bound on queries per class (the synthetic benchmarks generate
  /// hundreds; the replay mix samples this many, evenly spread).
  size_t queries_per_class = 8;
  /// Mixed into every generator seed, so two harness runs with different
  /// seeds replay different (but individually deterministic) workloads.
  uint64_t seed = 0;
};

struct Workload {
  WorkloadClass cls = WorkloadClass::kFig3Cafe;
  std::string name;
  AnnotatedCorpus corpus;
  std::vector<WorkloadQuery> queries;
};

/// Builds one workload class: generates the corpus, annotates it through
/// `pipeline`, and materialises the class's query list. Fails only when a
/// fixed query text no longer parses (a regression in the query language).
Result<Workload> BuildWorkload(WorkloadClass cls, const Pipeline& pipeline,
                               const WorkloadOptions& options);

/// All six classes, in declaration order.
Result<std::vector<Workload>> BuildAllWorkloads(const Pipeline& pipeline,
                                                const WorkloadOptions& options);

// ---- Query-text builders (shared with the fig benches) ----------------------

/// The Appendix-A cafe query (Figures 3/5), parameterised by threshold.
std::string CafeQueryText(double threshold);
/// The Figure-4 sports-team query over tweets.
std::string TweetTeamQueryText(double threshold);
/// The Figure-4 facility query over tweets.
std::string TweetFacilityQueryText(double threshold);

/// Converts a Synthetic Tree benchmark query (a set of root-anchored
/// paths) into an executable engine query: one node variable per path
/// (v0..vn) and output `v0:Str`, so candidate pruning exercises exactly
/// the per-path DPLI lookups the §6.2 index comparison measures.
Query QueryFromTreeBench(const TreeBenchQuery& bench, const std::string& source);

// ---- Row digests ------------------------------------------------------------

/// Order-sensitive 64-bit FNV digest over a result row stream: row count,
/// then per row doc, sid, every value string, and the raw bit pattern of
/// every score. Two results digest equal iff they are byte-identical row
/// for row — the compact form of the determinism contract that golden
/// files and the replayer's parity counters record.
uint64_t RowDigest(const std::vector<ResultRow>& rows);
uint64_t RowDigest(const QueryResult& result);

/// Fixed-width (16 hex digit) rendering used by the golden files.
std::string DigestHex(uint64_t digest);

}  // namespace replay
}  // namespace koko

#endif  // KOKO_REPLAY_WORKLOADS_H_

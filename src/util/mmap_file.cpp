#include "util/mmap_file.h"

#if defined(_WIN32)
// No mmap on Windows in this tree; Open fails cleanly and callers fall
// back to the copying load path.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace koko {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
#if defined(_WIN32)
  return Status::Unimplemented("memory-mapped load unsupported on this platform");
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + err);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot map " + path + ": not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    // MAP_PRIVATE read-only: the mapping is immutable from our side and
    // shares page-cache pages with every other reader of the file.
    data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " + err);
    }
  }
  // The mapping keeps the underlying pages alive; the descriptor is not
  // needed past mmap.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(path, data, size));
#endif
}

MappedFile::~MappedFile() {
#if !defined(_WIN32)
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

}  // namespace koko

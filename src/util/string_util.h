#ifndef KOKO_UTIL_STRING_UTIL_H_
#define KOKO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace koko {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view text);
char ToLowerChar(char c);

/// ASCII upper-casing of the first character only ("cafe" -> "Cafe").
std::string Capitalize(std::string_view text);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True when `needle` occurs in `haystack` (case sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

/// True when `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);
bool IsAsciiAlnum(char c);
bool IsAsciiUpper(char c);
bool IsAsciiSpace(char c);

/// True when every character of `text` is an ASCII digit (and non-empty).
bool IsAllDigits(std::string_view text);

/// True when the first character is an ASCII capital letter.
bool IsCapitalized(std::string_view text);

/// Formats a double with `digits` decimal places (e.g. for report tables).
std::string FormatDouble(double value, int digits);

/// Renders a byte count as a human-readable string ("1.5 MB").
std::string HumanBytes(size_t bytes);

}  // namespace koko

#endif  // KOKO_UTIL_STRING_UTIL_H_

#ifndef KOKO_UTIL_STATUS_H_
#define KOKO_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace koko {

/// Canonical error codes, loosely following the Arrow/absl conventions.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
  kUnavailable,
};

/// \brief Result of an operation that can fail.
///
/// A Status is either OK or carries a code and a human-readable message.
/// Library code never throws across public API boundaries; it returns
/// Status (or Result<T> for value-producing operations) instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Either a value of type T or an error Status.
///
/// Analogous to arrow::Result / absl::StatusOr. Accessing the value of a
/// failed Result aborts (see KOKO_CHECK in logging.h); call ok() first or
/// use KOKO_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace koko

/// Propagates a non-OK Status to the caller.
#define KOKO_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::koko::Status _koko_status = (expr);         \
    if (!_koko_status.ok()) return _koko_status;  \
  } while (0)

#define KOKO_CONCAT_IMPL_(x, y) x##y
#define KOKO_CONCAT_(x, y) KOKO_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the error Status from the enclosing function.
#define KOKO_ASSIGN_OR_RETURN(lhs, expr)                         \
  auto KOKO_CONCAT_(_koko_result_, __LINE__) = (expr);           \
  if (!KOKO_CONCAT_(_koko_result_, __LINE__).ok())               \
    return KOKO_CONCAT_(_koko_result_, __LINE__).status();       \
  lhs = std::move(KOKO_CONCAT_(_koko_result_, __LINE__)).value()

#endif  // KOKO_UTIL_STATUS_H_

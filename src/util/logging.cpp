#include "util/logging.h"

#include <cstring>

namespace koko {
namespace internal_logging {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() {
  static const LogLevel min_level = [] {
    const char* env = std::getenv("KOKO_LOG_LEVEL");
    if (env != nullptr && std::strlen(env) == 1 && env[0] >= '0' && env[0] <= '4') {
      return static_cast<LogLevel>(env[0] - '0');
    }
    return LogLevel::kInfo;
  }();
  return min_level;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* basename = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (basename ? basename + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace koko

#ifndef KOKO_UTIL_HASH_H_
#define KOKO_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace koko {

/// 64-bit FNV-1a. Used for deterministic, platform-independent hashing of
/// strings (embedding seeds, feature hashing, interner buckets).
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// SplitMix64 finaliser; turns a counter/seed into a well-mixed 64-bit value.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Boost-style hash combining.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace koko

#endif  // KOKO_UTIL_HASH_H_

#ifndef KOKO_UTIL_THREAD_POOL_H_
#define KOKO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace koko {

/// \brief Fixed-size thread pool for fork/join parallel sections.
///
/// Deliberately work-stealing-free: callers distribute work themselves
/// (typically via an atomic cursor over a pre-ordered task list), which
/// keeps per-worker output buffers append-only and merges deterministic.
/// Workers park on a condition variable between dispatches, so one pool can
/// serve many parallel sections without re-spawning threads.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (at least 1).
  explicit ThreadPool(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers) {
    workers_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Runs `fn(worker_id)` once on every worker concurrently; blocks the
  /// calling thread until all workers have returned. `fn` must be safe to
  /// invoke from `num_workers()` threads at once.
  void Dispatch(const std::function<void(size_t)>& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = num_workers_;
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    fn_ = nullptr;
  }

 private:
  void WorkerLoop(size_t worker_id) {
    uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        fn = fn_;
      }
      (*fn)(worker_id);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0) done_.notify_all();
      }
    }
  }

  const size_t num_workers_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(size_t)>* fn_ = nullptr;
  uint64_t generation_ = 0;
  size_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace koko

#endif  // KOKO_UTIL_THREAD_POOL_H_

#ifndef KOKO_UTIL_THREAD_POOL_H_
#define KOKO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace koko {

/// \brief Fixed-size thread pool with a task queue and fork/join sections.
///
/// Two layers of API:
///
///  * `Submit(task)` — enqueue one fire-and-forget task (FIFO). The engine's
///    serving layer uses this for whole-query execution.
///  * `ParallelFor(n, fn)` / `Dispatch(fn)` — a fork/join section: `fn(slot)`
///    runs exactly once for every slot in `[0, n)` and the call returns when
///    all slots have finished. **Safe to call from any number of threads
///    concurrently**: every call owns its own job state, so many queries can
///    share one pool (the admission-queue serving model) instead of each
///    spawning a private fork/join section. The calling thread participates
///    in its own section, so a section always completes even when every
///    worker is busy with other sections or with the caller's own enqueued
///    query tasks — which also makes it safe to open a section from *inside*
///    a Submit()-ed task without deadlock.
///
/// Deliberately work-stealing-free: fork/join callers distribute work
/// themselves (typically via an atomic cursor over a pre-ordered task list),
/// which keeps per-slot output buffers append-only and merges deterministic.
/// Slot ids are stable task indices, not thread identities; results indexed
/// by slot are byte-identical regardless of which thread ran which slot.
///
/// Lock discipline is compiler-checked: `queue_`/`shutdown_` are
/// KOKO_GUARDED_BY(mu_) and a clang `-Werror=thread-safety` build rejects
/// any unlocked access (see src/util/thread_annotations.h).
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (at least 1).
  explicit ThreadPool(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers) {
    workers_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains the queue (remaining tasks run, on workers) and joins. The
  /// caller must ensure no new Submit/ParallelFor races with destruction.
  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task) KOKO_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      queue_.push_back(std::move(task));
    }
    wake_.NotifyOne();
  }

  /// Fork/join section: runs `fn(slot)` exactly once for each slot in
  /// `[0, num_slots)` and blocks until every slot has returned. The calling
  /// thread executes slots alongside the workers. Thread-safe and
  /// re-entrant; `fn` must tolerate up to `min(num_slots, num_workers + 1)`
  /// concurrent invocations (each with a distinct slot).
  void ParallelFor(size_t num_slots, const std::function<void(size_t)>& fn)
      KOKO_EXCLUDES(mu_) {
    if (num_slots == 0) return;
    if (num_slots == 1) {
      fn(0);
      return;
    }
    auto job = std::make_shared<Job>(num_slots, &fn);
    // Enough helpers that every idle worker can join, minus the caller's
    // own seat. Helpers that arrive after the section drained are no-ops.
    const size_t helpers = std::min(num_slots - 1, num_workers_);
    {
      MutexLock lock(mu_);
      for (size_t i = 0; i < helpers; ++i) {
        queue_.push_back([job] { RunSlots(*job); });
      }
    }
    wake_.NotifyAll();
    RunSlots(*job);
    MutexLock lock(job->mu);
    while (job->completed != job->num_slots) job->done.Wait(job->mu);
  }

  /// Legacy fork/join shape: one slot per worker. `fn(slot)` runs once for
  /// every slot in `[0, num_workers())`; see ParallelFor for the contract.
  void Dispatch(const std::function<void(size_t)>& fn) {
    ParallelFor(num_workers_, fn);
  }

 private:
  // One fork/join section. Helpers hold the state alive via shared_ptr;
  // `fn` is only dereferenced for claimed slots, all of which finish before
  // ParallelFor (and therefore the caller's `fn`) goes away.
  struct Job {
    Job(size_t n, const std::function<void(size_t)>* f) : num_slots(n), fn(f) {}
    const size_t num_slots;
    const std::function<void(size_t)>* const fn;
    std::atomic<size_t> next_slot{0};
    Mutex mu;
    CondVar done;
    size_t completed KOKO_GUARDED_BY(mu) = 0;
  };

  static void RunSlots(Job& job) {
    size_t ran = 0;
    for (;;) {
      const size_t slot = job.next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= job.num_slots) break;
      (*job.fn)(slot);
      ++ran;
    }
    if (ran == 0) return;
    MutexLock lock(job.mu);
    job.completed += ran;
    if (job.completed == job.num_slots) job.done.NotifyAll();
  }

  void WorkerLoop() KOKO_EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && queue_.empty()) wake_.Wait(mu_);
        if (queue_.empty()) return;  // shutdown with a drained queue
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  const size_t num_workers_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ KOKO_GUARDED_BY(mu_);
  bool shutdown_ KOKO_GUARDED_BY(mu_) = false;
};

}  // namespace koko

#endif  // KOKO_UTIL_THREAD_POOL_H_

#ifndef KOKO_UTIL_THREAD_POOL_H_
#define KOKO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace koko {

/// \brief Fixed-size thread pool with a task queue and fork/join sections.
///
/// Two layers of API:
///
///  * `Submit(task)` — enqueue one fire-and-forget task (FIFO). The engine's
///    serving layer uses this for whole-query execution.
///  * `ParallelFor(n, fn)` / `Dispatch(fn)` — a fork/join section: `fn(slot)`
///    runs exactly once for every slot in `[0, n)` and the call returns when
///    all slots have finished. **Safe to call from any number of threads
///    concurrently**: every call owns its own job state, so many queries can
///    share one pool (the admission-queue serving model) instead of each
///    spawning a private fork/join section. The calling thread participates
///    in its own section, so a section always completes even when every
///    worker is busy with other sections or with the caller's own enqueued
///    query tasks — which also makes it safe to open a section from *inside*
///    a Submit()-ed task without deadlock.
///
/// Deliberately work-stealing-free: fork/join callers distribute work
/// themselves (typically via an atomic cursor over a pre-ordered task list),
/// which keeps per-slot output buffers append-only and merges deterministic.
/// Slot ids are stable task indices, not thread identities; results indexed
/// by slot are byte-identical regardless of which thread ran which slot.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (at least 1).
  explicit ThreadPool(size_t num_workers)
      : num_workers_(num_workers == 0 ? 1 : num_workers) {
    workers_.reserve(num_workers_);
    for (size_t w = 0; w < num_workers_; ++w) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Drains the queue (remaining tasks run, on workers) and joins. The
  /// caller must ensure no new Submit/ParallelFor races with destruction.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return num_workers_; }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Fork/join section: runs `fn(slot)` exactly once for each slot in
  /// `[0, num_slots)` and blocks until every slot has returned. The calling
  /// thread executes slots alongside the workers. Thread-safe and
  /// re-entrant; `fn` must tolerate up to `min(num_slots, num_workers + 1)`
  /// concurrent invocations (each with a distinct slot).
  void ParallelFor(size_t num_slots, const std::function<void(size_t)>& fn) {
    if (num_slots == 0) return;
    if (num_slots == 1) {
      fn(0);
      return;
    }
    auto job = std::make_shared<Job>(num_slots, &fn);
    // Enough helpers that every idle worker can join, minus the caller's
    // own seat. Helpers that arrive after the section drained are no-ops.
    const size_t helpers = std::min(num_slots - 1, num_workers_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < helpers; ++i) {
        queue_.push_back([job] { RunSlots(*job); });
      }
    }
    wake_.notify_all();
    RunSlots(*job);
    std::unique_lock<std::mutex> lock(job->mu);
    job->done.wait(lock, [&] { return job->completed == job->num_slots; });
  }

  /// Legacy fork/join shape: one slot per worker. `fn(slot)` runs once for
  /// every slot in `[0, num_workers())`; see ParallelFor for the contract.
  void Dispatch(const std::function<void(size_t)>& fn) {
    ParallelFor(num_workers_, fn);
  }

 private:
  // One fork/join section. Helpers hold the state alive via shared_ptr;
  // `fn` is only dereferenced for claimed slots, all of which finish before
  // ParallelFor (and therefore the caller's `fn`) goes away.
  struct Job {
    Job(size_t n, const std::function<void(size_t)>* f) : num_slots(n), fn(f) {}
    const size_t num_slots;
    const std::function<void(size_t)>* const fn;
    std::atomic<size_t> next_slot{0};
    std::mutex mu;
    std::condition_variable done;
    size_t completed = 0;
  };

  static void RunSlots(Job& job) {
    size_t ran = 0;
    for (;;) {
      const size_t slot = job.next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= job.num_slots) break;
      (*job.fn)(slot);
      ++ran;
    }
    if (ran == 0) return;
    std::lock_guard<std::mutex> lock(job.mu);
    job.completed += ran;
    if (job.completed == job.num_slots) job.done.notify_all();
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown with a drained queue
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  const size_t num_workers_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace koko

#endif  // KOKO_UTIL_THREAD_POOL_H_

#include "util/string_util.h"

#include <algorithm>
#include <cstdio>

namespace koko {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && !IsAsciiSpace(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

char ToLowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), ToLowerChar);
  return out;
}

std::string Capitalize(std::string_view text) {
  std::string out(text);
  if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsAsciiSpace(text[begin])) ++begin;
  while (end > begin && IsAsciiSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           ToLowerChar(haystack[i + j]) == ToLowerChar(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerChar(a[i]) != ToLowerChar(b[i])) return false;
  }
  return true;
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsAsciiAlnum(char c) { return IsAsciiDigit(c) || IsAsciiAlpha(c); }
bool IsAsciiUpper(char c) { return c >= 'A' && c <= 'Z'; }
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}

bool IsAllDigits(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsAsciiDigit);
}

bool IsCapitalized(std::string_view text) {
  return !text.empty() && IsAsciiUpper(text[0]);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
  return buf;
}

}  // namespace koko

#ifndef KOKO_UTIL_RNG_H_
#define KOKO_UTIL_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace koko {

/// \brief Deterministic 64-bit PRNG (xoshiro256**).
///
/// All randomised components (corpus generators, synthetic benchmarks,
/// property tests, embeddings) are seeded explicitly so every experiment is
/// exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      x = Mix64(x);
      s = x;
    }
  }

  /// Seeds from a string (e.g. an experiment name).
  static Rng FromString(std::string_view name) { return Rng(Fnv1a64(name)); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call; simple, adequate).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-12) u1 = 1e-12;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Uniform(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace koko

#endif  // KOKO_UTIL_RNG_H_

#ifndef KOKO_UTIL_THREAD_ANNOTATIONS_H_
#define KOKO_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

/// \file Clang thread-safety (capability) analysis for the engine's
/// concurrency invariants.
///
/// PRs 1-7 made the engine concurrent — a shared ThreadPool, lock-striped
/// ScoreCache, mutexed PlanCache, FIFO AdmissionQueue — and until now every
/// lock-discipline invariant was only checked *dynamically*, when a TSan run
/// happened to exercise the right interleaving. These macros let the
/// compiler prove the discipline statically on every build: each
/// mutex-protected member is declared `KOKO_GUARDED_BY(mu_)`, each function
/// that expects a held lock `KOKO_REQUIRES(mu_)`, and a clang build with
/// `-Wthread-safety -Werror=thread-safety` (CMake turns this on
/// automatically for clang; CI's static-analysis job gates on it) rejects
/// any access that cannot be shown to hold the right capability.
///
/// Under GCC (or any compiler without the capability attributes) every
/// macro expands to nothing and `Mutex`/`MutexLock`/`CondVar` are
/// zero-overhead wrappers over their std counterparts, so the annotated
/// code is portable and costs nothing where it cannot be checked.
///
/// The analysis only follows locks it can name, so the repo uses the
/// annotated wrappers below instead of raw `std::mutex` — enforced by
/// `tools/lint_invariants.py` (raw-mutex rule). How to add a new guarded
/// member is documented in docs/STATIC_ANALYSIS.md.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define KOKO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef KOKO_THREAD_ANNOTATION
#define KOKO_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Marks a type as a capability ("mutex") the analysis can track.
#define KOKO_CAPABILITY(x) KOKO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define KOKO_SCOPED_CAPABILITY KOKO_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reads and writes require holding `x`.
#define KOKO_GUARDED_BY(x) KOKO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointed-to data requires holding `x`.
#define KOKO_PT_GUARDED_BY(x) KOKO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the listed capabilities.
#define KOKO_REQUIRES(...) \
  KOKO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: acquire / release the listed capabilities.
#define KOKO_ACQUIRE(...) \
  KOKO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define KOKO_RELEASE(...) \
  KOKO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define KOKO_TRY_ACQUIRE(...) \
  KOKO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Functions: must be called *without* the listed capabilities held
/// (deadlock prevention for self-locking public APIs).
#define KOKO_EXCLUDES(...) KOKO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch — every use must carry a comment justifying why the
/// analysis cannot see the invariant (lint_invariants.py counts these).
#define KOKO_NO_THREAD_SAFETY_ANALYSIS \
  KOKO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace koko {

class CondVar;

/// \brief Annotated mutex: `std::mutex` wearing the capability attribute.
///
/// Exactly the std::mutex API surface the repo uses, but visible to the
/// thread-safety analysis. Prefer `MutexLock` over calling Lock/Unlock
/// directly; the RAII form is what the analysis reasons about best.
class KOKO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KOKO_ACQUIRE() { mu_.lock(); }
  void Unlock() KOKO_RELEASE() { mu_.unlock(); }
  bool TryLock() KOKO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock for `Mutex` (the annotated `std::lock_guard`).
class KOKO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KOKO_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KOKO_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable over `Mutex`.
///
/// `Wait` takes the (held) Mutex explicitly so the analysis can check the
/// caller actually holds it; the lock is reacquired before Wait returns,
/// exactly like `std::condition_variable::wait`. There is deliberately no
/// predicate overload: the analysis cannot see into a predicate lambda, so
/// callers write the standard loop themselves —
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);   // ready_ is KOKO_GUARDED_BY(mu_)
///
/// which keeps every guarded read inside an analyzable scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, reacquires `mu` before returning.
  /// May wake spuriously — always call in a predicate loop.
  void Wait(Mutex& mu) KOKO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace koko

#endif  // KOKO_UTIL_THREAD_ANNOTATIONS_H_

#ifndef KOKO_UTIL_MMAP_FILE_H_
#define KOKO_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace koko {

/// \brief A borrowed, read-only byte range — the currency of the zero-copy
/// load path.
///
/// A span never owns its memory: it points into an owned vector, a
/// `MappedFile`, or any other buffer the caller keeps alive. Slicing is
/// bounds-checked (`Slice` returns an error instead of a span past the
/// end), so structures parsed out of an untrusted index image can never
/// reference bytes outside the mapping.
class MemorySpan {
 public:
  MemorySpan() = default;
  MemorySpan(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bounds-checked sub-range [offset, offset + length).
  Result<MemorySpan> Slice(size_t offset, size_t length) const {
    if (offset > size_ || length > size_ - offset) {
      return Status::OutOfRange("span slice [" + std::to_string(offset) + ", +" +
                                std::to_string(length) + ") exceeds " +
                                std::to_string(size_) + " bytes");
    }
    return MemorySpan(data_ + offset, length);
  }

  /// Copies the viewed bytes out (tests, diagnostics).
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief A borrowed array of uint32 values over possibly-unaligned bytes.
///
/// Index images carry no alignment padding (strings of arbitrary length
/// precede the posting sections), so a uint32 array aliased straight out of
/// an mmap'ed file generally starts at an odd byte. Dereferencing a
/// misaligned `uint32_t*` is undefined behaviour; this view loads elements
/// through `memcpy`, which every supported compiler folds into a plain
/// (hardware-tolerated) unaligned load. Values are host-endian, matching
/// `BinaryWriter`'s raw integer writes.
class U32View {
 public:
  U32View() = default;
  /// View over an owned, aligned vector.
  explicit U32View(const std::vector<uint32_t>& v)
      : data_(reinterpret_cast<const uint8_t*>(v.data())), size_(v.size()) {}
  /// View over `count` uint32s starting at `bytes` (no alignment required).
  U32View(const uint8_t* bytes, size_t count) : data_(bytes), size_(count) {}

  uint32_t operator[](size_t i) const {
    uint32_t v;
    std::memcpy(&v, data_ + i * sizeof(uint32_t), sizeof(uint32_t));
    return v;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Underlying bytes (serialization: the view is written back verbatim).
  const uint8_t* raw() const { return data_; }
  size_t raw_size() const { return size_ * sizeof(uint32_t); }

  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out(size_);
    for (size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
    return out;
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief RAII read-only memory mapping of a whole file.
///
/// The zero-copy index load (`KokoIndex::Load` with `LoadMode::kMap`) maps
/// the image once and aliases every posting payload into the mapping; the
/// loaded index holds a `shared_ptr<MappedFile>` so the bytes outlive every
/// structure pointing at them (shards of one sharded file share a single
/// mapping). Pages are faulted in lazily by the OS and served from the page
/// cache, so many worker processes mapping the same image share physical
/// memory.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IoError when the file cannot be
  /// opened, stat'ed, or mapped; an empty file maps to an empty span.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  MemorySpan span() const {
    return MemorySpan(static_cast<const uint8_t*>(data_), size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, void* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  void* data_ = nullptr;  // nullptr iff the file is empty
  size_t size_ = 0;
};

}  // namespace koko

#endif  // KOKO_UTIL_MMAP_FILE_H_

// NEON posting-block kernels for aarch64, where NEON is baseline (no extra
// compile flags). On other targets this TU degrades to a stub reporting the
// ISA unavailable.
#include "util/simd.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace koko {
namespace simd {
namespace {

// In-register inclusive prefix sum of 4 dwords (shift-in-zeros via vext of
// a zero vector).
inline uint32x4_t PrefixSum4(uint32x4_t v) {
  const uint32x4_t zero = vdupq_n_u32(0);
  v = vaddq_u32(v, vextq_u32(zero, v, 3));
  v = vaddq_u32(v, vextq_u32(zero, v, 2));
  return v;
}

void DecodeVarintBlockNeon(const uint8_t* p, uint32_t first, size_t count,
                           uint32_t* out) {
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 1;
  for (;;) {
    // 4 pending gaps occupy >= 4 payload bytes, so the probe load is safe.
    while (i + 4 <= count) {
      uint32_t chunk;
      std::memcpy(&chunk, p, 4);
      if (chunk & 0x80808080u) break;
      const uint8x8_t bytes = vreinterpret_u8_u32(vdup_n_u32(chunk));
      const uint16x8_t half = vmovl_u8(bytes);
      const uint32x4_t gaps = vmovl_u16(vget_low_u16(half));
      const uint32x4_t sums = vaddq_u32(PrefixSum4(gaps), vdupq_n_u32(sid));
      vst1q_u32(out + i, sums);
      sid = vgetq_lane_u32(sums, 3);
      p += 4;
      i += 4;
    }
    if (i >= count) return;
    uint32_t gap = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = *p++;
      gap |= static_cast<uint32_t>(byte & 0x7f) << shift;
      shift += 7;
    } while (byte & 0x80);
    sid += gap;
    out[i++] = sid;
  }
}

void UnpackBlockNeon(const uint8_t* p, uint32_t width, uint32_t first,
                     size_t count, uint32_t* out) {
  if (count == 0) return;
  const size_t gaps = count - 1;
  uint32_t tmp[128];
  if (width == 8) {
    for (size_t i = 0; i < gaps; ++i) tmp[i] = p[i];
  } else if (width == 16) {
    for (size_t i = 0; i < gaps; ++i) {
      uint16_t v;
      std::memcpy(&v, p + 2 * i, 2);
      tmp[i] = v;
    }
  } else if (width == 32) {
    for (size_t i = 0; i < gaps; ++i) std::memcpy(&tmp[i], p + 4 * i, 4);
  } else {
    for (size_t i = 0; i < gaps; ++i) tmp[i] = ExtractPackedGap(p, width, i);
  }
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 0;
  while (i + 4 <= gaps) {
    const uint32x4_t v = vld1q_u32(tmp + i);
    const uint32x4_t sums = vaddq_u32(PrefixSum4(v), vdupq_n_u32(sid));
    vst1q_u32(out + 1 + i, sums);
    sid = vgetq_lane_u32(sums, 3);
    i += 4;
  }
  for (; i < gaps; ++i) {
    sid += tmp[i];
    out[1 + i] = sid;
  }
}

size_t IntersectSortedNeon(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const uint32x4_t va = vld1q_u32(a + i);
    const uint32x4_t vb = vld1q_u32(b + j);
    uint32x4_t cmp = vceqq_u32(va, vb);
    cmp = vorrq_u32(cmp, vceqq_u32(va, vextq_u32(vb, vb, 1)));
    cmp = vorrq_u32(cmp, vceqq_u32(va, vextq_u32(vb, vb, 2)));
    cmp = vorrq_u32(cmp, vceqq_u32(va, vextq_u32(vb, vb, 3)));
    // Compact matched lanes in order (NEON has no movemask; the narrowed
    // per-lane flags drive scalar emission).
    const uint16x4_t flags = vmovn_u32(cmp);
    if (vget_lane_u16(flags, 0)) out[k++] = a[i + 0];
    if (vget_lane_u16(flags, 1)) out[k++] = a[i + 1];
    if (vget_lane_u16(flags, 2)) out[k++] = a[i + 2];
    if (vget_lane_u16(flags, 3)) out[k++] = a[i + 3];
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  return k;
}

constexpr Kernels kNeonKernels = {
    DecodeVarintBlockNeon,
    UnpackBlockNeon,
    IntersectSortedNeon,
};

}  // namespace

const Kernels* GetNeonKernels() { return &kNeonKernels; }

}  // namespace simd
}  // namespace koko

#else  // !(aarch64 && NEON)

namespace koko {
namespace simd {
const Kernels* GetNeonKernels() { return nullptr; }
}  // namespace simd
}  // namespace koko

#endif

#ifndef KOKO_UTIL_LOGGING_H_
#define KOKO_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace koko {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Minimum level that is actually emitted; default kInfo. Controlled by the
/// KOKO_LOG_LEVEL environment variable (0..4) at first use.
LogLevel MinLogLevel();

/// Stream-style log sink; writes one line to stderr on destruction and
/// aborts the process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace koko

#define KOKO_LOG_AT(level)                                                 \
  ::koko::internal_logging::LogMessage(level, __FILE__, __LINE__).stream()

#define KOKO_LOG(severity)                                                  \
  (::koko::internal_logging::LogLevel::k##severity <                        \
   ::koko::internal_logging::MinLogLevel())                                 \
      ? (void)0                                                             \
      : (void)(KOKO_LOG_AT(::koko::internal_logging::LogLevel::k##severity) \
               << "")

// Stream-capable variants (usable as `KOKO_DLOG(Info) << "x=" << x;`).
#define KOKO_DLOG(severity) \
  KOKO_LOG_AT(::koko::internal_logging::LogLevel::k##severity)

/// Aborts with a message when `condition` is false. Used for internal
/// invariants that indicate programmer error, never for user input.
#define KOKO_CHECK(condition)                                              \
  (condition) ? (void)0                                                    \
              : (void)(KOKO_LOG_AT(                                        \
                           ::koko::internal_logging::LogLevel::kFatal)     \
                       << "Check failed: " #condition " ")

#define KOKO_CHECK_OK(expr)                                                \
  do {                                                                     \
    ::koko::Status _koko_st = (expr);                                      \
    if (!_koko_st.ok()) {                                                  \
      KOKO_LOG_AT(::koko::internal_logging::LogLevel::kFatal)              \
          << "Check failed (status): " << _koko_st.ToString();             \
    }                                                                      \
  } while (0)

#endif  // KOKO_UTIL_LOGGING_H_

// SSE4.2 posting-block kernels. This translation unit is compiled with
// -msse4.2 on x86 (see CMakeLists.txt); on any other target, or when the
// flag is missing, it compiles to a stub that reports the ISA unavailable,
// so the build never breaks and dispatch simply skips SSE.
#include "util/simd.h"

#if defined(__SSE4_2__) && defined(__POPCNT__)

#include <nmmintrin.h>
#include <smmintrin.h>

namespace koko {
namespace simd {
namespace {

// pshufb control bytes that compact the dword lanes selected by a 4-bit
// match mask to the front of the register (unselected tail lanes are
// zeroed; only the popcount-prefix of the store is counted).
struct ShuffleTable {
  uint8_t b[16][16];
};

constexpr ShuffleTable MakeShuffleTable() {
  ShuffleTable t{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (m & (1 << lane)) {
        for (int byte = 0; byte < 4; ++byte) {
          t.b[m][k++] = static_cast<uint8_t>(4 * lane + byte);
        }
      }
    }
    for (; k < 16; ++k) t.b[m][k] = 0x80;
  }
  return t;
}

constexpr ShuffleTable kCompact = MakeShuffleTable();

// In-register inclusive prefix sum of 4 dwords.
inline __m128i PrefixSum4(__m128i v) {
  v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
  v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
  return v;
}

void DecodeVarintBlockSse(const uint8_t* p, uint32_t first, size_t count,
                          uint32_t* out) {
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 1;
  for (;;) {
    // Fast path: posting gaps are overwhelmingly single-byte (dense sids);
    // a run of 4 bytes with no continuation bit decodes as 4 gaps via a
    // byte-widen + prefix sum. Reading 4 payload bytes is safe because 4
    // pending gaps occupy at least 4 payload bytes.
    // The running sid stays in a register across fast-path iterations (a
    // broadcast of the top lane), so consecutive prefix sums overlap
    // instead of serializing through a GPR extract.
    if (i + 4 <= count) {
      __m128i vsid = _mm_set1_epi32(static_cast<int>(sid));
      while (i + 4 <= count) {
        uint32_t chunk;
        std::memcpy(&chunk, p, 4);
        if (chunk & 0x80808080u) break;
        __m128i gaps =
            _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(chunk)));
        const __m128i sums = _mm_add_epi32(PrefixSum4(gaps), vsid);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), sums);
        vsid = _mm_shuffle_epi32(sums, 0xff);
        p += 4;
        i += 4;
      }
      sid = static_cast<uint32_t>(_mm_cvtsi128_si32(vsid));
    }
    if (i >= count) return;
    uint32_t gap = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = *p++;
      gap |= static_cast<uint32_t>(byte & 0x7f) << shift;
      shift += 7;
    } while (byte & 0x80);
    sid += gap;
    out[i++] = sid;
  }
}

void UnpackBlockSse(const uint8_t* p, uint32_t width, uint32_t first,
                    size_t count, uint32_t* out) {
  if (count == 0) return;
  const size_t gaps = count - 1;
  // Extract the fixed-width gaps into a flat dword buffer (trivially
  // vectorizable for byte/word/dword widths), then vector prefix-sum.
  uint32_t tmp[128];
  if (width == 8) {
    for (size_t i = 0; i < gaps; ++i) tmp[i] = p[i];
  } else if (width == 16) {
    for (size_t i = 0; i < gaps; ++i) {
      uint16_t v;
      std::memcpy(&v, p + 2 * i, 2);
      tmp[i] = v;
    }
  } else if (width == 32) {
    for (size_t i = 0; i < gaps; ++i) std::memcpy(&tmp[i], p + 4 * i, 4);
  } else {
    // Generic widths: the two-word funnel shift dominates, so feed the
    // running sum directly — a tmp round-trip only adds store traffic.
    uint32_t sid = first;
    out[0] = sid;
    for (size_t i = 0; i < gaps; ++i) {
      sid += ExtractPackedGap(p, width, i);
      out[1 + i] = sid;
    }
    return;
  }
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 0;
  __m128i vsid = _mm_set1_epi32(static_cast<int>(sid));
  while (i + 4 <= gaps) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tmp + i));
    const __m128i sums = _mm_add_epi32(PrefixSum4(v), vsid);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 1 + i), sums);
    vsid = _mm_shuffle_epi32(sums, 0xff);
    i += 4;
  }
  sid = static_cast<uint32_t>(_mm_cvtsi128_si32(vsid));
  for (; i < gaps; ++i) {
    sid += tmp[i];
    out[1 + i] = sid;
  }
}

size_t IntersectSortedSse(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // All-pairs equality via the three dword rotations of vb.
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
    const __m128i sh =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(kCompact.b[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                     _mm_shuffle_epi8(va, sh));
    k += static_cast<size_t>(_mm_popcnt_u32(static_cast<unsigned>(mask)));
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  return k;
}

constexpr Kernels kSseKernels = {
    DecodeVarintBlockSse,
    UnpackBlockSse,
    IntersectSortedSse,
};

}  // namespace

const Kernels* GetSseKernels() { return &kSseKernels; }

}  // namespace simd
}  // namespace koko

#else  // !(__SSE4_2__ && __POPCNT__)

namespace koko {
namespace simd {
const Kernels* GetSseKernels() { return nullptr; }
}  // namespace simd
}  // namespace koko

#endif

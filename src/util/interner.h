#ifndef KOKO_UTIL_INTERNER_H_
#define KOKO_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace koko {

/// Dense integer id for an interned string. kInvalidSymbol means "absent".
using Symbol = uint32_t;
inline constexpr Symbol kInvalidSymbol = static_cast<Symbol>(-1);

/// \brief Bidirectional string <-> dense-id mapping.
///
/// Token texts, labels, and index keys are interned once so that postings
/// and tries store 4-byte ids instead of strings.
class StringPool {
 public:
  /// Returns the id for `text`, interning it if new.
  Symbol Intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    Symbol id = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(text);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `text` or kInvalidSymbol when not present.
  Symbol Find(std::string_view text) const {
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  const std::string& Lookup(Symbol id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Approximate heap footprint in bytes (for index-size accounting).
  size_t MemoryUsage() const {
    size_t total = strings_.capacity() * sizeof(std::string);
    for (const auto& s : strings_) total += s.capacity();
    // unordered_map overhead: buckets + nodes.
    total += ids_.bucket_count() * sizeof(void*);
    total += ids_.size() * (sizeof(void*) * 2 + sizeof(std::string) + sizeof(Symbol));
    return total;
  }

 private:
  std::unordered_map<std::string, Symbol> ids_;
  std::vector<std::string> strings_;
};

}  // namespace koko

#endif  // KOKO_UTIL_INTERNER_H_

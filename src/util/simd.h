#ifndef KOKO_UTIL_SIMD_H_
#define KOKO_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace koko {
namespace simd {

/// \brief Runtime-dispatched SIMD kernels for the 128-sid posting blocks.
///
/// The hot loops of DPLI — varint gap decode, bit-packed gap decode, and
/// sorted-set intersection — compile once per instruction set into separate
/// translation units (simd_sse.cpp with -msse4.2, simd_avx2.cpp with
/// -mavx2, simd_neon.cpp on aarch64) plus a portable scalar fallback. The
/// best ISA the CPU supports is chosen once, at first use, via cpuid; the
/// KOKO_SIMD environment variable (scalar|sse|avx2|neon) overrides the
/// choice for testing and differential runs. Call sites go through
/// `ActiveKernels()`, so `BlockList::DecodeBlock`, the skip-gallop
/// candidate step, `IntersectAllViews`, and the `KokoPathSidLookup`
/// semi-joins all pick up vector kernels with zero call-site changes.

enum class Isa {
  kScalar = 0,
  kSse = 1,   // x86 SSE4.2 (+POPCNT)
  kAvx2 = 2,  // x86 AVX2
  kNeon = 3,  // aarch64 NEON
};

/// Extra element capacity `intersect_sorted`'s `out` buffer must provide
/// beyond min(na, nb): the vector kernels store a full (compacted) vector
/// register at the output cursor, so up to one register of lanes past the
/// final match is written with garbage before the count is returned.
inline constexpr size_t kIntersectOutSlack = 8;

/// The kernel table one ISA implements. All kernels are exact drop-in
/// replacements for each other: for any input, every ISA produces
/// byte-identical output (the differential suite in sid_ops_test.cpp
/// enforces this across every available ISA).
struct Kernels {
  /// Decodes one varint-delta posting block: out[0] = first, then `count-1`
  /// LEB128-varint gaps read from `p` accumulate into absolute sids.
  /// The payload must be pre-validated (BlockList "validate before alias");
  /// `p` may be unaligned and `count` is at most BlockList::kBlockSids.
  void (*decode_varint_block)(const uint8_t* p, uint32_t first, size_t count,
                              uint32_t* out);

  /// Decodes one fixed-width bit-packed posting block (the v4 image form):
  /// out[0] = first, then `count-1` gaps of `width` bits each, packed
  /// LSB-first into a little-endian bitstream whose total size is padded to
  /// a multiple of 4 bytes (so word-granular loads never cross the block's
  /// end). `width` <= 32; payload pre-validated; `p` may be unaligned.
  void (*unpack_block)(const uint8_t* p, uint32_t width, uint32_t first,
                       size_t count, uint32_t* out);

  /// Intersects two sorted, duplicate-free uint32 arrays into `out`,
  /// returning the number of matches. `out` must have capacity for
  /// min(na, nb) + kIntersectOutSlack elements (see above) and may not
  /// alias either input.
  size_t (*intersect_sorted)(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, uint32_t* out);
};

/// Human-readable ISA name ("scalar", "sse", "avx2", "neon") — the value
/// logged at startup and recorded as `simd_isa` in BENCH_micro.json.
const char* IsaName(Isa isa);

/// Kernel table for one ISA, or nullptr when that ISA is not compiled in
/// or not supported by this CPU. kScalar is always available.
const Kernels* KernelsFor(Isa isa);

/// Every ISA usable on this machine, scalar first — what the differential
/// property tests iterate over.
std::vector<Isa> AvailableIsas();

/// The ISA in effect (resolved once at first use: best available, unless
/// KOKO_SIMD overrides it).
Isa ActiveIsa();
const char* ActiveIsaName();

/// The active kernel table — the single indirection every posting-block
/// call site pays.
const Kernels& ActiveKernels();

/// Overrides the active ISA (tests and per-ISA benchmarks only; must be an
/// available ISA). Not synchronized against concurrent queries — switch
/// only while no query is in flight.
void SetActiveIsa(Isa isa);

/// Extracts gap `i` from a `width`-bit packed little-endian bitstream.
/// Shared by the scalar kernels and the structural validator. Requires the
/// stream to be padded to a multiple of 4 bytes (the v4 block contract):
/// the second word is only read when the field actually straddles a word
/// boundary, which the padding proof guarantees is in bounds.
inline uint32_t ExtractPackedGap(const uint8_t* p, uint32_t width, size_t i) {
  const size_t bit = i * width;
  const size_t word = bit >> 5;
  const unsigned shift = static_cast<unsigned>(bit & 31);
  uint32_t lo;
  std::memcpy(&lo, p + 4 * word, 4);
  uint64_t v = lo;
  if (shift + width > 32) {
    uint32_t hi;
    std::memcpy(&hi, p + 4 * word + 4, 4);
    v |= static_cast<uint64_t>(hi) << 32;
  }
  const uint64_t mask =
      width == 32 ? 0xffffffffull : ((1ull << width) - 1);
  return static_cast<uint32_t>((v >> shift) & mask);
}

// Per-ISA registration hooks (internal): each translation unit always
// compiles; it returns its kernel table when built with the matching ISA
// flags and nullptr otherwise, so the link never breaks on a toolchain
// without some ISA. CPU support is checked separately in KernelsFor.
const Kernels* GetSseKernels();
const Kernels* GetAvx2Kernels();
const Kernels* GetNeonKernels();

}  // namespace simd
}  // namespace koko

#endif  // KOKO_UTIL_SIMD_H_

// AVX2 posting-block kernels. Compiled with -mavx2 on x86 (see
// CMakeLists.txt); otherwise this TU degrades to a stub reporting the ISA
// unavailable. Selected at runtime only when cpuid reports AVX2.
#include "util/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace koko {
namespace simd {
namespace {

// vpermd index table compacting the dword lanes selected by an 8-bit match
// mask to the front of the register.
struct PermTable {
  uint32_t idx[256][8];
};

constexpr PermTable MakePermTable() {
  PermTable t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (m & (1 << lane)) t.idx[m][k++] = static_cast<uint32_t>(lane);
    }
    for (; k < 8; ++k) t.idx[m][k] = 0;
  }
  return t;
}

constexpr PermTable kCompact = MakePermTable();

// Lane-rotation index vectors for the all-pairs comparison: rotation r maps
// lane l to source lane (l + r) % 8.
constexpr PermTable MakeRotTable() {
  PermTable t{};
  for (int r = 0; r < 8; ++r) {
    for (int l = 0; l < 8; ++l) t.idx[r][l] = static_cast<uint32_t>((l + r) % 8);
  }
  return t;
}

constexpr PermTable kRot = MakeRotTable();

// In-register inclusive prefix sum of 8 dwords.
inline __m256i PrefixSum8(__m256i v) {
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 4));
  v = _mm256_add_epi32(v, _mm256_slli_si256(v, 8));
  // Carry the low 128-bit lane's total into every high-lane element.
  const __m256i lane_totals = _mm256_shuffle_epi32(v, 0xff);
  const __m256i carry = _mm256_permute2x128_si256(lane_totals, lane_totals, 0x08);
  return _mm256_add_epi32(v, carry);
}

void DecodeVarintBlockAvx2(const uint8_t* p, uint32_t first, size_t count,
                           uint32_t* out) {
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 1;
  for (;;) {
    // 8 pending gaps occupy >= 8 payload bytes, so the 8-byte probe load
    // stays inside the validated payload. The running sid stays in a
    // register across iterations (broadcast of the top lane) — the only
    // loop-carried chain is one add and one permute, so the prefix sums
    // overlap across iterations instead of serializing through a GPR.
    if (i + 8 <= count) {
      __m256i vsid = _mm256_set1_epi32(static_cast<int>(sid));
      const __m256i seven = _mm256_set1_epi32(7);
      while (i + 8 <= count) {
        uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        if (chunk & 0x8080808080808080ull) break;
        const __m256i gaps = _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
        const __m256i sums = _mm256_add_epi32(PrefixSum8(gaps), vsid);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), sums);
        vsid = _mm256_permutevar8x32_epi32(sums, seven);
        p += 8;
        i += 8;
      }
      sid = static_cast<uint32_t>(
          _mm_cvtsi128_si32(_mm256_castsi256_si128(vsid)));
    }
    if (i >= count) return;
    uint32_t gap = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = *p++;
      gap |= static_cast<uint32_t>(byte & 0x7f) << shift;
      shift += 7;
    } while (byte & 0x80);
    sid += gap;
    out[i++] = sid;
  }
}

// Per-(width, bit-phase) lanes for the 4-wide bit-unpack: a pshufb mask
// moving each field's four candidate bytes into its dword lane, plus the
// per-lane residual shift. Valid for widths 1..25 — a field starting at
// bit phase <= 7 then spans at most 7 + 25 = 32 bits, i.e. four bytes, and
// the fourth field's last byte sits at offset (7 + 3*25)/8 + 3 = 13 < 16,
// inside one 16-byte load.
struct PackedLut {
  uint8_t shuf[26][8][16];
  uint32_t shift[26][8][4];
};

constexpr PackedLut MakePackedLut() {
  PackedLut t{};
  for (int w = 1; w <= 25; ++w) {
    for (int ph = 0; ph < 8; ++ph) {
      for (int k = 0; k < 4; ++k) {
        const int bit = ph + k * w;
        for (int j = 0; j < 4; ++j) {
          t.shuf[w][ph][4 * k + j] = static_cast<uint8_t>((bit >> 3) + j);
        }
        t.shift[w][ph][k] = static_cast<uint32_t>(bit & 7);
      }
    }
  }
  return t;
}

constexpr PackedLut kPacked = MakePackedLut();

// In-register inclusive prefix sum of 4 dwords (128-bit half).
inline __m128i PrefixSum4(__m128i v) {
  v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
  return _mm_add_epi32(v, _mm_slli_si128(v, 8));
}

void UnpackBlockAvx2(const uint8_t* p, uint32_t width, uint32_t first,
                     size_t count, uint32_t* out) {
  if (count == 0) return;
  const size_t gaps = count - 1;
  uint32_t sid = first;
  out[0] = sid;
  size_t i = 0;
  if (width >= 1 && width <= 25) {
    // Four fields per step: one unaligned 16-byte load, pshufb each
    // field's bytes into a dword lane, variable right-shift by the bit
    // phase, mask. The load must stay inside the block payload, so the
    // vector loop stops 16 bytes short of the end; widths > 25 (gaps over
    // 33M — pathological) take the scalar tail from the start.
    const uint64_t bits = static_cast<uint64_t>(gaps) * width;
    const size_t payload =
        static_cast<size_t>(((bits + 7) / 8 + 3) & ~uint64_t{3});
    const __m128i mask =
        _mm_set1_epi32(static_cast<int>((1u << width) - 1u));
    uint64_t base_bit = 0;
    // Eight fields per step — two 16-byte halves (fields 0-3 and 4-7, each
    // with its own bit phase) unpacked by one 256-bit shuffle/shift, so the
    // serial sid carry advances once per eight gaps instead of four.
    const __m256i mask8 = _mm256_set_m128i(mask, mask);
    __m256i vsid = _mm256_set1_epi32(static_cast<int>(sid));
    const __m256i seven = _mm256_set1_epi32(7);
    while (i + 8 <= gaps &&
           ((base_bit + 4u * width) >> 3) + 16 <= payload) {
      const uint64_t bit2 = base_bit + 4u * width;
      const unsigned ph0 = static_cast<unsigned>(base_bit & 7);
      const unsigned ph1 = static_cast<unsigned>(bit2 & 7);
      const __m256i raw = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + (bit2 >> 3))),
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(p + (base_bit >> 3))));
      const __m256i shuf = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(kPacked.shuf[width][ph1])),
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(kPacked.shuf[width][ph0])));
      const __m256i sh = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(kPacked.shift[width][ph1])),
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(kPacked.shift[width][ph0])));
      const __m256i v = _mm256_and_si256(
          _mm256_srlv_epi32(_mm256_shuffle_epi8(raw, shuf), sh), mask8);
      const __m256i sums = _mm256_add_epi32(PrefixSum8(v), vsid);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 1 + i), sums);
      vsid = _mm256_permutevar8x32_epi32(sums, seven);
      i += 8;
      base_bit += 8u * width;
    }
    sid = static_cast<uint32_t>(
        _mm_cvtsi128_si32(_mm256_castsi256_si128(vsid)));
    while (i + 4 <= gaps && (base_bit >> 3) + 16 <= payload) {
      const unsigned ph = static_cast<unsigned>(base_bit & 7);
      const __m128i raw = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + (base_bit >> 3)));
      const __m128i shuf = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(kPacked.shuf[width][ph]));
      const __m128i sh = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(kPacked.shift[width][ph]));
      const __m128i v = _mm_and_si128(
          _mm_srlv_epi32(_mm_shuffle_epi8(raw, shuf), sh), mask);
      const __m128i sums =
          _mm_add_epi32(PrefixSum4(v), _mm_set1_epi32(static_cast<int>(sid)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 1 + i), sums);
      sid = static_cast<uint32_t>(_mm_extract_epi32(sums, 3));
      i += 4;
      base_bit += 4u * width;
    }
  }
  for (; i < gaps; ++i) {
    sid += ExtractPackedGap(p, width, i);
    out[1 + i] = sid;
  }
}

size_t IntersectSortedAvx2(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      const __m256i rot = _mm256_permutevar8x32_epi32(
          vb, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kRot.idx[r])));
      cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, rot));
    }
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
    const __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kCompact.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm256_permutevar8x32_epi32(va, perm));
    k += static_cast<size_t>(_mm_popcnt_u32(static_cast<unsigned>(mask)));
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  return k;
}

constexpr Kernels kAvx2Kernels = {
    DecodeVarintBlockAvx2,
    UnpackBlockAvx2,
    IntersectSortedAvx2,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Kernels; }

}  // namespace simd
}  // namespace koko

#else  // !__AVX2__

namespace koko {
namespace simd {
const Kernels* GetAvx2Kernels() { return nullptr; }
}  // namespace simd
}  // namespace koko

#endif

#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "util/logging.h"

namespace koko {
namespace simd {

// ---- Scalar reference kernels ----------------------------------------------
//
// The portable fallback and the ground truth the vector kernels are
// differentially tested against. These are the exact loops the block call
// sites ran before dispatch existed.

namespace {

void DecodeVarintBlockScalar(const uint8_t* p, uint32_t first, size_t count,
                             uint32_t* out) {
  uint32_t sid = first;
  out[0] = sid;
  for (size_t i = 1; i < count; ++i) {
    uint32_t gap = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = *p++;
      gap |= static_cast<uint32_t>(byte & 0x7f) << shift;
      shift += 7;
    } while (byte & 0x80);
    sid += gap;
    out[i] = sid;
  }
}

void UnpackBlockScalar(const uint8_t* p, uint32_t width, uint32_t first,
                       size_t count, uint32_t* out) {
  uint32_t sid = first;
  out[0] = sid;
  for (size_t i = 1; i < count; ++i) {
    sid += ExtractPackedGap(p, width, i - 1);
    out[i] = sid;
  }
}

size_t IntersectSortedScalar(const uint32_t* a, size_t na, const uint32_t* b,
                             size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    const uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out[k++] = x;
      ++i;
      ++j;
    }
  }
  return k;
}

constexpr Kernels kScalarKernels = {
    DecodeVarintBlockScalar,
    UnpackBlockScalar,
    IntersectSortedScalar,
};

// ---- CPU feature detection --------------------------------------------------

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse:
      return __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return true;  // NEON is baseline on aarch64
#endif
    default:
      return false;
  }
}

// ---- Resolution -------------------------------------------------------------

std::atomic<const Kernels*> g_active{nullptr};
std::atomic<int> g_active_isa{-1};
std::once_flag g_resolve_once;

Isa BestAvailable() {
  for (Isa isa : {Isa::kAvx2, Isa::kSse, Isa::kNeon}) {
    if (KernelsFor(isa) != nullptr) return isa;
  }
  return Isa::kScalar;
}

void ResolveOnce() {
  std::call_once(g_resolve_once, [] {
    Isa chosen = BestAvailable();
    const char* env = std::getenv("KOKO_SIMD");
    if (env != nullptr && *env != '\0') {
      const std::string want(env);
      Isa requested;
      bool known = true;
      if (want == "scalar") {
        requested = Isa::kScalar;
      } else if (want == "sse") {
        requested = Isa::kSse;
      } else if (want == "avx2") {
        requested = Isa::kAvx2;
      } else if (want == "neon") {
        requested = Isa::kNeon;
      } else {
        known = false;
        requested = chosen;
        KOKO_DLOG(Warning) << "KOKO_SIMD=" << want
                           << " not recognized (scalar|sse|avx2|neon); using "
                           << IsaName(chosen);
      }
      if (known) {
        if (KernelsFor(requested) != nullptr) {
          chosen = requested;
        } else {
          KOKO_DLOG(Warning) << "KOKO_SIMD=" << want
                             << " unavailable on this CPU/build; using "
                             << IsaName(chosen);
        }
      }
    }
    g_active_isa.store(static_cast<int>(chosen), std::memory_order_relaxed);
    g_active.store(KernelsFor(chosen), std::memory_order_release);
    KOKO_DLOG(Info) << "simd: posting kernels using isa=" << IsaName(chosen)
                    << (env != nullptr ? " (KOKO_SIMD set)" : "");
  });
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse:
      return "sse";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

const Kernels* KernelsFor(Isa isa) {
  if (!CpuSupports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return &kScalarKernels;
    case Isa::kSse:
      return GetSseKernels();
    case Isa::kAvx2:
      return GetAvx2Kernels();
    case Isa::kNeon:
      return GetNeonKernels();
  }
  return nullptr;
}

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse, Isa::kAvx2, Isa::kNeon}) {
    if (KernelsFor(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

Isa ActiveIsa() {
  ResolveOnce();
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

const Kernels& ActiveKernels() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    ResolveOnce();
    k = g_active.load(std::memory_order_acquire);
  }
  return *k;
}

void SetActiveIsa(Isa isa) {
  const Kernels* k = KernelsFor(isa);
  KOKO_CHECK(k != nullptr);
  ResolveOnce();  // keep the one-time log/env resolution first
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  g_active.store(k, std::memory_order_release);
}

}  // namespace simd
}  // namespace koko

#ifndef KOKO_UTIL_TIMER_H_
#define KOKO_UTIL_TIMER_H_

#include <chrono>
#include <map>
#include <string>

namespace koko {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates wall time per named phase.
///
/// The KOKO engine reports a Table-2-style breakdown (Normalize, DPLI,
/// LoadArticle, GSP, extract, satisfying); each phase charges its elapsed
/// time here via ScopedPhase.
class PhaseStats {
 public:
  void Add(const std::string& phase, double seconds) { seconds_[phase] += seconds; }
  double Get(const std::string& phase) const {
    auto it = seconds_.find(phase);
    return it == seconds_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& all() const { return seconds_; }
  void Clear() { seconds_.clear(); }

  double Total() const {
    double t = 0;
    for (const auto& [_, s] : seconds_) t += s;
    return t;
  }

 private:
  std::map<std::string, double> seconds_;
};

/// Charges the lifetime of the object to one phase of a PhaseStats.
class ScopedPhase {
 public:
  ScopedPhase(PhaseStats* stats, std::string phase)
      : stats_(stats), phase_(std::move(phase)) {}
  ~ScopedPhase() { stats_->Add(phase_, timer_.ElapsedSeconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseStats* stats_;
  std::string phase_;
  WallTimer timer_;
};

}  // namespace koko

#endif  // KOKO_UTIL_TIMER_H_

#ifndef KOKO_CORPUS_GENERATORS_H_
#define KOKO_CORPUS_GENERATORS_H_

#include <string>
#include <vector>

#include "nlp/pipeline.h"
#include "text/document.h"

namespace koko {

/// A generated corpus with extraction ground truth.
struct LabeledCorpus {
  std::vector<RawDocument> docs;
  std::vector<std::string> gold;  // gold mention strings
};

/// \brief Cafe-blog generator (stand-in for BaristaMag / Sprudge, §6.1).
///
/// Every article reviews one (rare, invented) cafe. Evidence about the
/// cafe is spread over multiple sentences and phrased with linguistic
/// variation drawn from the paraphrase clusters ("serves coffee" /
/// "sells espresso" / "pours excellent lattes" / "hired a star barista"),
/// so per-sentence extractors miss what document-level aggregation
/// catches. Distractor sentences embed the failure modes the paper's
/// Appendix-A excluding clauses target: street addresses, coffee
/// festivals/championships, espresso-machine brands ("La Marzocco"), and
/// city names that "produce and sell the best coffee".
struct CafeGenOptions {
  int num_articles = 80;
  /// Short articles (BaristaMag-like, ~6 sentences, mostly paraphrased
  /// weak evidence) vs long articles (Sprudge-like, ~13 sentences,
  /// including strong exact-phrase evidence) — the Figure 5 contrast.
  bool long_articles = false;
  uint64_t seed = 1;
};
LabeledCorpus GenerateCafeBlogs(const CafeGenOptions& options);

/// \brief WNUT-like tweet generator (§6.1, Figure 4): one short document
/// per tweet, mentioning sports teams and facilities.
struct TweetGenOptions {
  int num_tweets = 600;
  uint64_t seed = 2;
};
struct TweetCorpus {
  std::vector<RawDocument> docs;
  std::vector<std::string> gold_teams;
  std::vector<std::string> gold_facilities;
};
TweetCorpus GenerateTweets(const TweetGenOptions& options);

/// \brief Wikipedia-like article generator (§6.2, §6.3).
///
/// Mix of person biographies (birth dates, nicknames), place articles and
/// food articles, tuned so the §6.3 example queries hit their reported
/// selectivities: Chocolate low (<1%), Title medium (~10%),
/// DateOfBirth high (>70%).
struct WikiGenOptions {
  int num_articles = 1000;
  uint64_t seed = 3;
};
std::vector<RawDocument> GenerateWikiArticles(const WikiGenOptions& options);

/// \brief HappyDB-like generator (§6.2): one short "happy moment" per doc.
struct HappyGenOptions {
  int num_moments = 2000;
  uint64_t seed = 4;
};
std::vector<RawDocument> GenerateHappyMoments(const HappyGenOptions& options);

}  // namespace koko

#endif  // KOKO_CORPUS_GENERATORS_H_

#ifndef KOKO_CORPUS_QUERY_GEN_H_
#define KOKO_CORPUS_QUERY_GEN_H_

#include <string>
#include <vector>

#include "index/path.h"
#include "koko/ast.h"
#include "text/document.h"

namespace koko {

/// One Synthetic Tree benchmark query: a tree pattern decomposed into
/// root-to-leaf paths (one per node variable), §6.2.2.
struct TreeBenchQuery {
  std::string name;
  std::vector<PathQuery> paths;
};

/// \brief Generates the §6.2.2 Synthetic Tree benchmark.
///
/// Path queries of length 2–5 are sampled from real root-to-node paths of
/// the corpus so that selectivity varies naturally; each setting varies
/// the attribute types on the path (parse labels only / + POS tags /
/// + words), wildcard insertion, and root anchoring (`/` vs leading `//`),
/// with `queries_per_setting` random picks per setting. Tree patterns with
/// 3–10 labels are sampled as small sub-trees and decomposed into
/// root-to-leaf paths. The default settings yield 350 queries, as in the
/// paper.
struct TreeBenchOptions {
  int queries_per_setting = 5;
  uint64_t seed = 7;
};
std::vector<TreeBenchQuery> GenerateSyntheticTreeBenchmark(
    const AnnotatedCorpus& corpus, const TreeBenchOptions& options);

/// \brief Generates the §6.2.3 Synthetic Span benchmark.
///
/// Span variables with 1, 3 or 5 atoms (paths / words sampled from the
/// corpus, alternating with elastic spans so there are at most 0, 1, 2
/// skippable atoms respectively); `queries_per_setting` = 100 gives the
/// paper's 300 queries.
struct SpanBenchOptions {
  int queries_per_setting = 100;
  uint64_t seed = 8;
};
struct SpanBenchQuery {
  std::string name;
  int num_atoms = 1;
  Query query;  // extract x:Str ... with the span definition
};
std::vector<SpanBenchQuery> GenerateSyntheticSpanBenchmark(
    const AnnotatedCorpus& corpus, const SpanBenchOptions& options);

}  // namespace koko

#endif  // KOKO_CORPUS_QUERY_GEN_H_

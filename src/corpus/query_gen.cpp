#include "corpus/query_gen.h"

#include <algorithm>

#include "util/rng.h"

namespace koko {

namespace {

// Samples a real root-to-node path of exactly `len` steps from the corpus
// (labels of the tokens along the path). Returns false when no sentence is
// deep enough after `attempts` tries.
bool SamplePath(const AnnotatedCorpus& corpus, Rng& rng, int len,
                std::vector<int>* tokens_out, const Sentence** sentence_out) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    uint32_t sid = static_cast<uint32_t>(rng.Uniform(corpus.NumSentences()));
    const Sentence& s = corpus.sentence(sid);
    if (s.size() == 0) continue;
    // Collect tokens at depth len-1 (path of `len` steps from the root).
    std::vector<int> deep;
    for (int t = 0; t < s.size(); ++t) {
      if (s.depth[t] == len - 1) deep.push_back(t);
    }
    if (deep.empty()) continue;
    int leaf = deep[rng.Uniform(deep.size())];
    std::vector<int> path;
    int cur = leaf;
    while (cur != -1) {
      path.push_back(cur);
      cur = s.tokens[cur].head;
    }
    std::reverse(path.begin(), path.end());
    *tokens_out = std::move(path);
    *sentence_out = &s;
    return true;
  }
  return false;
}

// attribute_mode: 0 = parse labels only, 1 = PL + POS, 2 = PL + POS + text.
PathQuery BuildPathQuery(const Sentence& s, const std::vector<int>& tokens,
                         int attribute_mode, bool with_wildcard, bool rooted,
                         Rng& rng) {
  PathQuery q;
  for (size_t i = 0; i < tokens.size(); ++i) {
    PathStep step;
    step.axis = PathStep::Axis::kChild;
    if (i == 0 && !rooted) step.axis = PathStep::Axis::kDescendant;
    const Token& tok = s.tokens[tokens[i]];
    // Choose the attribute for this step.
    int pick = attribute_mode == 0 ? 0 : static_cast<int>(rng.Uniform(
                                             attribute_mode == 1 ? 2 : 3));
    switch (pick) {
      case 0:
        step.constraint.dep = tok.label;
        break;
      case 1:
        step.constraint.pos = tok.pos;
        break;
      default:
        step.constraint.word = tok.text;
        break;
    }
    q.steps.push_back(std::move(step));
  }
  if (with_wildcard && q.steps.size() >= 2) {
    // Blank out one interior step (not the last, to keep selectivity sane).
    size_t at = 1 + rng.Uniform(q.steps.size() - 1);
    if (at == q.steps.size() - 1 && q.steps.size() > 2) at -= 1;
    q.steps[at].constraint = NodeConstraint{};
  }
  return q;
}

}  // namespace

std::vector<TreeBenchQuery> GenerateSyntheticTreeBenchmark(
    const AnnotatedCorpus& corpus, const TreeBenchOptions& options) {
  Rng rng(options.seed);
  std::vector<TreeBenchQuery> queries;

  // Single-path settings: length 2..5 x attribute mode 0..2 x wildcard x
  // rooted -> 4*3*2*2 = 48 settings x queries_per_setting.
  for (int len = 2; len <= 5; ++len) {
    for (int mode = 0; mode <= 2; ++mode) {
      for (int wildcard = 0; wildcard <= 1; ++wildcard) {
        for (int rooted = 0; rooted <= 1; ++rooted) {
          for (int k = 0; k < options.queries_per_setting; ++k) {
            std::vector<int> tokens;
            const Sentence* s = nullptr;
            if (!SamplePath(corpus, rng, len, &tokens, &s)) continue;
            TreeBenchQuery q;
            q.name = "path_l" + std::to_string(len) + "_m" + std::to_string(mode) +
                     (wildcard ? "_wc" : "") + (rooted ? "_root" : "_desc") + "_" +
                     std::to_string(k);
            q.paths.push_back(
                BuildPathQuery(*s, tokens, mode, wildcard != 0, rooted != 0, rng));
            queries.push_back(std::move(q));
          }
        }
      }
    }
  }

  // Tree-pattern settings: total labels 3..10, decomposed into 2-3 paths
  // sharing a prefix. 8 settings x ~queries_per_setting*2 to reach ~350.
  for (int labels = 3; labels <= 10; ++labels) {
    for (int k = 0; k < options.queries_per_setting * 2 - 4; ++k) {
      // Sample a branching node: a token with >= 2 children.
      for (int attempt = 0; attempt < 200; ++attempt) {
        uint32_t sid = static_cast<uint32_t>(rng.Uniform(corpus.NumSentences()));
        const Sentence& s = corpus.sentence(sid);
        std::vector<int> branchers;
        for (int t = 0; t < s.size(); ++t) {
          if (s.children[t].size() >= 2) branchers.push_back(t);
        }
        if (branchers.empty()) continue;
        int node = branchers[rng.Uniform(branchers.size())];
        // Root-to-node prefix.
        std::vector<int> prefix;
        int cur = node;
        while (cur != -1) {
          prefix.push_back(cur);
          cur = s.tokens[cur].head;
        }
        std::reverse(prefix.begin(), prefix.end());
        int prefix_labels = static_cast<int>(prefix.size());
        int remaining = labels - prefix_labels;
        if (remaining < 2) break;  // need at least two children
        int num_children =
            std::min<int>(static_cast<int>(s.children[node].size()),
                          std::min(remaining, 3));
        TreeBenchQuery q;
        q.name = "tree_n" + std::to_string(labels) + "_" + std::to_string(k);
        int mode = static_cast<int>(rng.Uniform(2));  // PL or PL+POS
        for (int c = 0; c < num_children; ++c) {
          std::vector<int> path = prefix;
          path.push_back(s.children[node][static_cast<size_t>(c)]);
          q.paths.push_back(BuildPathQuery(s, path, mode, /*with_wildcard=*/false,
                                           /*rooted=*/true, rng));
        }
        queries.push_back(std::move(q));
        break;
      }
    }
  }
  return queries;
}

std::vector<SpanBenchQuery> GenerateSyntheticSpanBenchmark(
    const AnnotatedCorpus& corpus, const SpanBenchOptions& options) {
  Rng rng(options.seed);
  std::vector<SpanBenchQuery> queries;

  auto sample_word = [&]() -> std::string {
    for (int attempt = 0; attempt < 100; ++attempt) {
      uint32_t sid = static_cast<uint32_t>(rng.Uniform(corpus.NumSentences()));
      const Sentence& s = corpus.sentence(sid);
      if (s.size() == 0) continue;
      const Token& t = s.tokens[rng.Uniform(static_cast<uint64_t>(s.size()))];
      if (t.pos == PosTag::kPunct) continue;
      return t.text;
    }
    return "the";
  };

  auto sample_path_atom = [&](SpanAtom* atom) {
    std::vector<int> tokens;
    const Sentence* s = nullptr;
    int len = static_cast<int>(rng.UniformInt(1, 3));
    if (!SamplePath(corpus, rng, len, &tokens, &s)) {
      atom->kind = SpanAtom::Kind::kLiteral;
      atom->tokens = {sample_word()};
      return;
    }
    atom->kind = SpanAtom::Kind::kPath;
    atom->path =
        BuildPathQuery(*s, tokens, /*attribute_mode=*/1, false, true, rng);
  };

  for (int atoms : {1, 3, 5}) {
    for (int k = 0; k < options.queries_per_setting; ++k) {
      SpanBenchQuery bench;
      bench.num_atoms = atoms;
      bench.name = "span_a" + std::to_string(atoms) + "_" + std::to_string(k);
      Query q;
      q.outputs.push_back({"x", "Str"});
      q.source = "bench";
      VarDef def;
      def.name = "x";
      def.kind = VarDef::Kind::kSpan;
      if (atoms == 1) {
        SpanAtom atom;
        if (rng.Bernoulli(0.5)) {
          sample_path_atom(&atom);
        } else {
          atom.kind = SpanAtom::Kind::kLiteral;
          atom.tokens = {sample_word()};
        }
        def.atoms.push_back(std::move(atom));
      } else {
        // Alternate anchors and elastic spans: anchor ^ anchor [^ anchor].
        int anchors = (atoms + 1) / 2;
        for (int a = 0; a < anchors; ++a) {
          SpanAtom atom;
          if (rng.Bernoulli(0.5)) {
            sample_path_atom(&atom);
          } else {
            atom.kind = SpanAtom::Kind::kLiteral;
            atom.tokens = {sample_word()};
          }
          def.atoms.push_back(std::move(atom));
          if (a + 1 < anchors) {
            SpanAtom elastic;
            elastic.kind = SpanAtom::Kind::kElastic;
            elastic.elastic.max_tokens = 8;
            def.atoms.push_back(std::move(elastic));
          }
        }
      }
      q.defs.push_back(std::move(def));
      bench.query = std::move(q);
      queries.push_back(std::move(bench));
    }
  }
  return queries;
}

}  // namespace koko

#include "corpus/generators.h"

#include <set>

#include "util/rng.h"
#include "util/string_util.h"

namespace koko {

namespace {

const std::vector<std::string>& CafeFirstWords() {
  static const auto* words = new std::vector<std::string>{
      "Luna",   "Ember",   "Harbor", "Finch",  "Maple",  "Cedar",  "Juniper",
      "Copper", "Willow",  "Sable",  "Marlow", "Hollow", "Vesper", "Quill",
      "Alder",  "Bramble", "Cobalt", "Dapple", "Fable",  "Garnet", "Heron",
      "Ivory",  "Jasper",  "Kestrel", "Lumen", "Meridian", "Nomad", "Onyx",
      "Pavo",   "Quarry",  "Raven",  "Saffron", "Tindle", "Umber", "Vireo",
      "Wren",   "Yarrow",  "Zephyr", "Basil",  "Clover",
  };
  return *words;
}

const std::vector<std::string>& CafeSecondWords() {
  static const auto* words = new std::vector<std::string>{
      "Lane", "House", "Corner", "Works", "Social", "Union", "Story",
      "Bloom", "Grove", "Yard", "Post", "Mill", "Dot", "Spark",
  };
  return *words;
}

const std::vector<std::string>& Cities() {
  static const auto* cities = new std::vector<std::string>{
      "Portland", "Seattle", "Austin", "Denver", "Chicago", "Boston",
      "Brooklyn", "Oakland", "Tokyo", "London", "Vienna", "Oslo",
  };
  return *cities;
}

const std::vector<std::string>& ServeVerbs() {
  static const auto* verbs = new std::vector<std::string>{
      "serves", "sells", "offers", "pours",
  };
  return *verbs;
}

const std::vector<std::string>& Drinks() {
  static const auto* drinks = new std::vector<std::string>{
      "coffee", "espresso", "cappuccinos", "macchiatos", "lattes",
  };
  return *drinks;
}

const std::vector<std::string>& DrinkAdjs() {
  static const auto* adjs = new std::vector<std::string>{
      "delicious", "excellent", "great", "amazing", "tasty",
  };
  return *adjs;
}

// Invented word, one per cafe: tokens never repeat between articles, so
// extractors cannot simply memorise the name vocabulary.
std::string SyntheticWord(Rng& rng) {
  static const std::vector<std::string> syllables = {
      "bre", "van", "kor", "mel", "tas", "rin", "dol", "fen", "gar", "hul",
      "jor", "kel", "lam", "mor", "nes", "pol", "quin", "ros", "sel", "tor",
      "ul",  "ven", "wes", "yor", "zan", "bel", "cam", "dru", "fal", "gil",
  };
  std::string word = rng.Choice(syllables) + rng.Choice(syllables);
  if (rng.Bernoulli(0.35)) word += rng.Choice(syllables);
  word[0] = static_cast<char>(word[0] - 'a' + 'A');
  return word;
}

std::string MakeCafeName(Rng& rng, bool* has_keyword) {
  double roll = rng.UniformDouble();
  std::string first = SyntheticWord(rng);
  *has_keyword = false;
  if (roll < 0.18) {
    *has_keyword = true;
    return first + " Cafe";
  }
  if (roll < 0.30) {
    *has_keyword = true;
    return first + " Coffee";
  }
  if (roll < 0.40) {
    *has_keyword = true;
    return first + " Roasters";
  }
  if (roll < 0.70) return first + " " + rng.Choice(CafeSecondWords());
  // Hard names: no keyword at all, a second invented word.
  return first + " " + SyntheticWord(rng);
}

// Weak (paraphrased) evidence sentences — only descriptor expansion or
// document-level aggregation catches these.
const std::vector<std::string>& Adverbs() {
  static const auto* adverbs = new std::vector<std::string>{
      "reportedly", "proudly",  "famously", "now",     "still",   "quietly",
      "happily",    "always",   "usually",  "clearly", "simply",  "often",
      "certainly",  "honestly", "bravely",  "calmly",  "eagerly", "gladly",
  };
  return *adverbs;
}

std::string WeakEvidence(Rng& rng, const std::string& name) {
  // Deliberately non-adjacent, lexically diversified phrasings: a random
  // adverb often separates the name from the verb and an adjective always
  // separates the verb from the drink — rigid per-sentence patterns (IKE)
  // and name-context features (CRF) splinter, while descriptor expansion +
  // document-level aggregation still catches the evidence.
  std::string gap = rng.Bernoulli(0.6) ? " " + rng.Choice(Adverbs()) + " " : " ";
  switch (rng.Uniform(6)) {
    case 0:
      return name + gap + rng.Choice(ServeVerbs()) + " " +
             rng.Choice(DrinkAdjs()) + " " + rng.Choice(Drinks()) + ".";
    case 1:
      return name + gap + "hired a star barista from " + rng.Choice(Cities()) +
             ".";
    case 2:
      return name + gap + rng.Choice(ServeVerbs()) + " truly " +
             rng.Choice(DrinkAdjs()) + " " + rng.Choice(Drinks()) +
             " and fresh pastries.";
    case 3:
      return "The baristas working at " + name + " won many fans this year.";
    case 4:
      return name + gap + "employs a small team of " +
             std::to_string(rng.UniformInt(2, 9)) + " baristas.";
    case 5:
      return "Locals line up at " + name + " for " + rng.Choice(DrinkAdjs()) +
             " " + rng.Choice(Drinks()) + ".";
    default:
      return name + gap + "pours " + rng.Choice(DrinkAdjs()) + " " +
             rng.Choice(Drinks()) + " every morning.";
  }
}

const std::vector<std::string>& PersonNames() {
  static const auto* names = new std::vector<std::string>{
      "Anna", "John", "Mary", "David", "Sarah", "Emma", "Lucas", "Maria",
      "Peter", "Alice", "Henry", "Clara", "George", "Tom", "Jane", "Paul",
  };
  return *names;
}

// Person-in-cafe-context traps: a person "serves espresso" exactly like a
// cafe would. Sequence taggers extract them; KOKO excludes them with a
// Person-dictionary condition (the paper's dict(...) mechanism).
std::string PersonTrap(Rng& rng) {
  // A single sentence of *exactly* the cafe-evidence shape about a non-cafe
  // subject. An extractor that judges sentences in isolation cannot tell
  // this from real evidence; only cross-sentence aggregation (cafes carry
  // several evidence sentences, traps exactly one) or the Person dictionary
  // separates them — the paper's central argument for KOKO.
  std::string person =
      rng.Bernoulli(0.6) ? rng.Choice(PersonNames()) : SyntheticWord(rng);
  return WeakEvidence(rng, person);
}

// Strong (exact-phrase) evidence — matched even without descriptors.
std::string StrongEvidence(Rng& rng, const std::string& name) {
  switch (rng.Uniform(3)) {
    case 0:
      return name + " , a cafe in " + rng.Choice(Cities()) +
             " , opened last month.";
    case 1:
      return name + " serves coffee from local roasters.";
    default:
      return "Guests say " + name + " serves coffee with care.";
  }
}

// Opening sentences: varied so sequence models cannot key on one template.
std::string OpeningSentence(Rng& rng, const std::string& name) {
  switch (rng.Uniform(5)) {
    case 0:
      return "This week we visited " + name + " in " + rng.Choice(Cities()) + ".";
    case 1:
      return "Our latest stop was " + name + " near the old mill.";
    case 2:
      return "Readers kept asking about " + name + " so we finally went.";
    case 3:
      return "On a quiet street you will find " + name + ".";
    default:
      return name + " opened quietly in " + rng.Choice(Cities()) + " last year.";
  }
}

std::string DistractorSentence(Rng& rng) {
  switch (rng.Uniform(11)) {
    case 6:
      // Cafe-like contexts around non-cafe mentions: traps for sequence
      // models that key on "X serves/employs" shapes (CRF).
      return "The " + rng.Choice(CafeFirstWords()) +
             " Mall serves thousands of shoppers daily.";
    case 7:
      return "This week we visited the " + rng.Choice(CafeFirstWords()) +
             " Museum in " + rng.Choice(Cities()) + ".";
    case 8:
      return "The " + rng.Choice(CafeFirstWords()) +
             " Library employs many students in summer.";
    case 9:
      return "We also visited our friend Anna at the " +
             rng.Choice(CafeFirstWords()) + " Library.";
    case 10:
      return "The " + rng.Choice(CafeFirstWords()) +
             " Center pours money into the arts.";
    default:
      break;
  }
  switch (rng.Uniform(7)) {
    case 0:
      return rng.Choice(Cities()) + " produces and sells the best coffee.";
    case 1:
      return "The new cafe on " + std::to_string(rng.UniformInt(10, 999)) + " " +
             rng.Choice(CafeFirstWords()) + " St. has the best cup of espresso.";
    case 2:
      return "The " + rng.Choice(Cities()) +
             " Coffee Festival returns this weekend.";
    case 3:
      return "A shiny La Marzocco machine sits on the bar.";
    case 4:
      return "The " + rng.Choice(Cities()) +
             " Barista Championship drew a large crowd.";
    case 5:
      return "Our reviewer enjoyed the quiet neighborhood very much.";
    default:
      return "The owner talked about the local music scene for an hour.";
  }
}

std::string FillerSentence(Rng& rng) {
  switch (rng.Uniform(5)) {
    case 0:
      return "The room was warm and the chairs were cozy.";
    case 1:
      return "We visited on a rainy morning last week.";
    case 2:
      return "The playlist leaned toward quiet jazz.";
    case 3:
      return "Large windows face the street.";
    default:
      return "The menu hangs above the counter.";
  }
}

}  // namespace

LabeledCorpus GenerateCafeBlogs(const CafeGenOptions& options) {
  Rng rng(options.seed);
  LabeledCorpus corpus;
  std::set<std::string> used;
  for (int i = 0; i < options.num_articles; ++i) {
    bool has_keyword = false;
    std::string name;
    do {
      name = MakeCafeName(rng, &has_keyword);
    } while (used.count(name) > 0);
    used.insert(name);
    corpus.gold.push_back(name);

    std::vector<std::string> sentences;
    // Opening sentence mentioning the cafe neutrally.
    sentences.push_back(OpeningSentence(rng, name));
    int64_t weak = options.long_articles ? rng.UniformInt(2, 4) : rng.UniformInt(1, 2);
    for (int64_t w = 0; w < weak; ++w) sentences.push_back(WeakEvidence(rng, name));
    // Long articles carry strong exact-phrase evidence too (Figure 5's
    // "descriptors do not help on Sprudge" effect).
    int64_t strong = options.long_articles ? rng.UniformInt(1, 2)
                                           : (rng.Bernoulli(0.2) ? 1 : 0);
    for (int64_t st = 0; st < strong; ++st) sentences.push_back(StrongEvidence(rng, name));
    int64_t distract =
        options.long_articles ? rng.UniformInt(3, 5) : rng.UniformInt(1, 2);
    for (int64_t d = 0; d < distract; ++d) sentences.push_back(DistractorSentence(rng));
    int64_t traps =
        options.long_articles ? rng.UniformInt(2, 3) : rng.UniformInt(1, 2);
    for (int64_t p = 0; p < traps; ++p) sentences.push_back(PersonTrap(rng));
    int64_t filler =
        options.long_articles ? rng.UniformInt(4, 6) : rng.UniformInt(1, 3);
    for (int64_t f = 0; f < filler; ++f) sentences.push_back(FillerSentence(rng));

    // Shuffle the middle so evidence is not positionally trivial.
    std::vector<std::string> middle(sentences.begin() + 1, sentences.end());
    rng.Shuffle(middle);
    RawDocument doc;
    doc.title = "blog-" + std::to_string(i);
    doc.text = sentences[0];
    for (const auto& s : middle) {
      doc.text += " ";
      doc.text += s;
    }
    corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

TweetCorpus GenerateTweets(const TweetGenOptions& options) {
  Rng rng(options.seed);
  TweetCorpus corpus;
  static const std::vector<std::string> team_suffix = {
      "United", "Tigers", "Eagles", "Wolves", "Sharks", "Hawks", "Rovers",
  };
  static const std::vector<std::string> facility_kind = {
      "Stadium", "Park", "Arena", "Center", "Museum", "Mall",
  };
  std::set<std::string> gold_teams;
  std::set<std::string> gold_facilities;
  for (int i = 0; i < options.num_tweets; ++i) {
    RawDocument doc;
    doc.title = "tweet-" + std::to_string(i);
    double roll = rng.UniformDouble();
    if (roll < 0.30) {
      std::string team = rng.Choice(Cities()) + " " + rng.Choice(team_suffix);
      std::string other = rng.Choice(CafeFirstWords()) + " " + rng.Choice(team_suffix);
      gold_teams.insert(team);
      switch (rng.Uniform(4)) {
        case 0:
          doc.text = team + " vs " + other + " tonight.";
          gold_teams.insert(other);
          break;
        case 1:
          doc.text = "Go " + team + " !";
          break;
        case 2:
          doc.text = team + " to host the soccer final.";
          break;
        default:
          doc.text = "What a match by " + team + " today.";
          break;
      }
    } else if (roll < 0.60) {
      std::string facility =
          rng.Choice(CafeFirstWords()) + " " + rng.Choice(facility_kind);
      gold_facilities.insert(facility);
      switch (rng.Uniform(4)) {
        case 0:
          doc.text = "Had a great time at " + facility + ".";
          break;
        case 1:
          doc.text = "We went to " + facility + " with friends.";
          break;
        case 2:
          doc.text = "Stuck in line at " + facility + " again.";
          break;
        default:
          doc.text = "Meet me at " + facility + " at 7 pm.";
          break;
      }
    } else {
      // Noise tweets with distractor shapes (@handles, times, "tonight").
      switch (rng.Uniform(4)) {
        case 0:
          doc.text = "So happy about my new job today!";
          break;
        case 1:
          doc.text = "@" + ToLower(rng.Choice(CafeFirstWords())) +
                     " see you tomorrow at 9 am.";
          break;
        case 2:
          doc.text = "Traffic was terrible tonight.";
          break;
        default:
          doc.text = "Coffee with " + rng.Choice(CafeFirstWords()) +
                     " made my morning.";
          break;
      }
    }
    corpus.docs.push_back(std::move(doc));
  }
  corpus.gold_teams.assign(gold_teams.begin(), gold_teams.end());
  corpus.gold_facilities.assign(gold_facilities.begin(), gold_facilities.end());
  return corpus;
}

std::vector<RawDocument> GenerateWikiArticles(const WikiGenOptions& options) {
  Rng rng(options.seed);
  static const std::vector<std::string> first_names = {
      "Anna", "Alys",  "Vera",  "Cyd",   "John",  "Mary", "David", "Sarah",
      "Emma", "Lucas", "Maria", "Peter", "Alice", "Henry", "Clara", "George",
  };
  static const std::vector<std::string> last_names = {
      "Charisse", "Thomas", "Mercer", "Hollis", "Vance", "Archer",
      "Bennett",  "Calder", "Dorsey", "Ellery", "Foster", "Granger",
  };
  static const std::vector<std::string> nicknames = {
      "Sid", "Bee", "Cap", "Dot", "Ace", "Rex", "Pip", "Max",
  };
  static const std::vector<std::string> occupations = {
      "actor", "writer", "singer", "player", "painter", "dancer",
  };
  std::vector<RawDocument> docs;
  docs.reserve(static_cast<size_t>(options.num_articles));
  for (int i = 0; i < options.num_articles; ++i) {
    RawDocument doc;
    doc.title = "article-" + std::to_string(i);
    double roll = rng.UniformDouble();
    std::string text;
    if (roll < 0.72) {
      // Person biography: high DateOfBirth selectivity.
      std::string person =
          rng.Choice(first_names) + " " + rng.Choice(last_names);
      std::string city = rng.Choice(Cities());
      int year = static_cast<int>(rng.UniformInt(1850, 1995));
      text = person + " was a famous " + rng.Choice(occupations) + " from " +
             city + ". ";
      text += person + " was born in " + std::to_string(year) + " in " + city +
              ". ";
      if (rng.Bernoulli(0.35)) {
        text += "He was married to " + rng.Choice(first_names) + " " +
                rng.Choice(last_names) + " on " +
                std::to_string(rng.UniformInt(1, 28)) + " December " +
                std::to_string(year + 25) + " in London, and the couple had a "
                "daughter " +
                rng.Choice(first_names) + " born in " +
                std::to_string(year + 27) + ". ";
      }
      // ~13% of articles carry a nickname sentence (Title query, medium).
      if (rng.Bernoulli(0.13)) {
        text += person + " had been called " + rng.Choice(nicknames) +
                " for years. ";
      }
      text += "The " + rng.Choice(occupations) + " lived in " +
              rng.Choice(Cities()) + " for a long time. ";
      if (rng.Bernoulli(0.3)) {
        text += person + " wrote about " + rng.Choice(Cities()) +
                " in a famous book. ";
      }
    } else if (roll < 0.92) {
      // Place article.
      std::string city = rng.Choice(Cities());
      text = city + " is a city with many museums. ";
      text += "Cities in asian countries such as China and Japan grew quickly. ";
      text += "The " + city + " Stadium hosts a match every week. ";
      if (rng.Bernoulli(0.2)) {
        text += "Many visitors enjoy the " + city + " Coffee Festival. ";
      }
    } else {
      // Food article; ~40% of these mention chocolate types (≈3% of all
      // articles contain the word, <1% match the full Chocolate pattern).
      if (rng.Bernoulli(0.4)) {
        text = "Baking chocolate is a type of chocolate that is prepared for "
               "baking. ";
        text += "Sweet chocolate melts at a low heat. ";
      } else {
        text = "Cheesecake is a dessert with a soft top. ";
        text += "Anna ate some delicious cheesecake that she bought at a "
                "grocery store. ";
      }
      text += "Many recipes need fresh cream and sugar. ";
    }
    doc.text = std::move(text);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<RawDocument> GenerateHappyMoments(const HappyGenOptions& options) {
  Rng rng(options.seed);
  static const std::vector<std::string> subjects = {
      "I", "My brother", "My sister", "My friend", "My dog", "My cat",
  };
  static const std::vector<std::string> foods = {
      "ice cream", "chocolate cake", "cheesecake", "pie", "pasta", "soup",
  };
  static const std::vector<std::string> adjs = {
      "delicious", "great", "wonderful", "tasty", "amazing", "fresh",
  };
  static const std::vector<std::string> places = {
      "the park", "the beach", "a cafe", "the library", "the mall", "home",
  };
  std::vector<RawDocument> docs;
  docs.reserve(static_cast<size_t>(options.num_moments));
  for (int i = 0; i < options.num_moments; ++i) {
    RawDocument doc;
    doc.title = "moment-" + std::to_string(i);
    switch (rng.Uniform(6)) {
      case 0:
        doc.text = rng.Choice(subjects) + " ate a " + rng.Choice(adjs) + " " +
                   rng.Choice(foods) + " today.";
        break;
      case 1:
        doc.text = "I went to " + rng.Choice(places) + " with my family and "
                   "felt happy.";
        break;
      case 2:
        doc.text = rng.Choice(subjects) + " got a new job in " +
                   rng.Choice(Cities()) + " this week.";
        break;
      case 3:
        doc.text = "I finished a " + rng.Choice(adjs) + " book at " +
                   rng.Choice(places) + ".";
        break;
      case 4:
        doc.text = rng.Choice(subjects) + " bought " + rng.Choice(foods) +
                   " at a grocery store, which was " + rng.Choice(adjs) + ".";
        break;
      default:
        doc.text = "My friend visited me and we enjoyed " + rng.Choice(foods) +
                   " together.";
        break;
    }
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace koko

#ifndef KOKO_REGEX_REGEX_H_
#define KOKO_REGEX_REGEX_H_

#include <bitset>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace koko {

/// \brief A from-scratch regular-expression engine (Thompson NFA, Pike VM).
///
/// Supports the constructs KOKO queries need: literals, `.`, character
/// classes `[a-z0-9_]` (ranges, negation, escapes), `\d \w \s` and their
/// negations, anchors `^ $`, grouping `( )`, alternation `|`, and the
/// quantifiers `* + ? {m} {m,} {m,n}`. Matching is linear in the input
/// (no backtracking blow-up), which matters because `excluding` clauses run
/// a regex over every candidate extraction.
///
/// Semantics follow the usual leftmost conventions: FullMatch anchors at
/// both ends; PartialMatch succeeds if any substring matches.
class Regex {
 public:
  struct Options {
    /// ASCII case folding.
    bool case_insensitive = false;
  };

  /// Compiles `pattern`. Returns ParseError for malformed patterns.
  static Result<Regex> Compile(std::string_view pattern, Options options);
  static Result<Regex> Compile(std::string_view pattern) {
    return Compile(pattern, Options());
  }

  /// True when the whole input matches the pattern.
  bool FullMatch(std::string_view text) const;

  /// True when any substring of the input matches the pattern.
  bool PartialMatch(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// Number of compiled NFA instructions (exposed for tests/benchmarks).
  size_t ProgramSize() const { return program_.size(); }

 private:
  // One NFA instruction.
  struct Inst {
    enum class Op : uint8_t {
      kChar,       // match one char against `klass`, goto next
      kSplit,      // epsilon: try `next` and `alt`
      kJmp,        // epsilon: goto `next`
      kAssertBol,  // epsilon: only if at beginning of input
      kAssertEol,  // epsilon: only if at end of input
      kMatch,      // accept
    };
    Op op = Op::kMatch;
    uint32_t next = 0;
    uint32_t alt = 0;
    std::bitset<256> klass;  // valid for kChar
  };

  Regex() = default;

  bool Run(std::string_view text, bool anchored_start) const;
  void AddThread(std::vector<uint32_t>& list, std::vector<uint32_t>& marks,
                 uint32_t generation, uint32_t pc, size_t pos, size_t len) const;

  std::string pattern_;
  std::vector<Inst> program_;
  bool anchored_end_only_ = false;

  friend class RegexCompiler;
};

/// Convenience: compile-and-match helpers (abort on invalid pattern; meant
/// for trusted, literal patterns in tests and generators).
bool RegexFullMatch(std::string_view text, std::string_view pattern);
bool RegexPartialMatch(std::string_view text, std::string_view pattern);

}  // namespace koko

#endif  // KOKO_REGEX_REGEX_H_

#include "regex/regex.h"

#include <memory>

#include "util/logging.h"
#include "util/string_util.h"

namespace koko {

namespace {

// Parse-tree node for patterns. The tree is expanded (bounded repeats are
// unrolled) before NFA code generation.
struct Node {
  enum class Kind {
    kChar,    // character class
    kConcat,  // children in sequence
    kAlt,     // children are alternatives
    kStar,    // zero or more of child 0; `greedy` ignored (match-only engine)
    kPlus,
    kOpt,
    kBol,
    kEol,
    kEmpty,
  };
  Kind kind = Kind::kEmpty;
  std::bitset<256> klass;
  std::vector<std::unique_ptr<Node>> children;
};

using NodePtr = std::unique_ptr<Node>;

NodePtr MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

NodePtr CloneNode(const Node& n) {
  auto c = std::make_unique<Node>();
  c->kind = n.kind;
  c->klass = n.klass;
  for (const auto& child : n.children) c->children.push_back(CloneNode(*child));
  return c;
}

void AddCaseFolded(std::bitset<256>& klass, unsigned char c, bool fold) {
  klass.set(c);
  if (fold) {
    if (c >= 'a' && c <= 'z') klass.set(c - 'a' + 'A');
    if (c >= 'A' && c <= 'Z') klass.set(c - 'A' + 'a');
  }
}

void AddRangeCaseFolded(std::bitset<256>& klass, unsigned char lo, unsigned char hi,
                        bool fold) {
  for (int c = lo; c <= hi; ++c) AddCaseFolded(klass, static_cast<unsigned char>(c), fold);
}

std::bitset<256> DigitClass() {
  std::bitset<256> k;
  for (int c = '0'; c <= '9'; ++c) k.set(c);
  return k;
}

std::bitset<256> WordClass() {
  std::bitset<256> k = DigitClass();
  for (int c = 'a'; c <= 'z'; ++c) k.set(c);
  for (int c = 'A'; c <= 'Z'; ++c) k.set(c);
  k.set('_');
  return k;
}

std::bitset<256> SpaceClass() {
  std::bitset<256> k;
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) k.set(static_cast<unsigned char>(c));
  return k;
}

// Recursive-descent pattern parser producing a Node tree.
class PatternParser {
 public:
  PatternParser(std::string_view pattern, bool fold) : pattern_(pattern), fold_(fold) {}

  Result<NodePtr> Parse() {
    auto node = ParseAlt();
    if (!node.ok()) return node.status();
    if (pos_ != pattern_.size()) {
      return Status::ParseError("unexpected '" + std::string(1, pattern_[pos_]) +
                                "' at offset " + std::to_string(pos_) + " in regex '" +
                                std::string(pattern_) + "'");
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }
  char Take() { return pattern_[pos_++]; }

  Result<NodePtr> ParseAlt() {
    auto first = ParseConcat();
    if (!first.ok()) return first.status();
    if (AtEnd() || Peek() != '|') return first;
    auto alt = MakeNode(Node::Kind::kAlt);
    alt->children.push_back(std::move(*first));
    while (!AtEnd() && Peek() == '|') {
      Take();
      auto next = ParseConcat();
      if (!next.ok()) return next.status();
      alt->children.push_back(std::move(*next));
    }
    return NodePtr(std::move(alt));
  }

  Result<NodePtr> ParseConcat() {
    auto concat = MakeNode(Node::Kind::kConcat);
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto piece = ParsePiece();
      if (!piece.ok()) return piece.status();
      concat->children.push_back(std::move(*piece));
    }
    if (concat->children.empty()) return NodePtr(MakeNode(Node::Kind::kEmpty));
    if (concat->children.size() == 1) return NodePtr(std::move(concat->children[0]));
    return NodePtr(std::move(concat));
  }

  Result<NodePtr> ParsePiece() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    NodePtr node = std::move(*atom);
    while (!AtEnd()) {
      char c = Peek();
      if (c == '*' || c == '+' || c == '?') {
        Take();
        auto rep = MakeNode(c == '*'   ? Node::Kind::kStar
                            : c == '+' ? Node::Kind::kPlus
                                       : Node::Kind::kOpt);
        rep->children.push_back(std::move(node));
        node = std::move(rep);
      } else if (c == '{') {
        auto bounded = ParseBoundedRepeat(std::move(node));
        if (!bounded.ok()) return bounded.status();
        node = std::move(*bounded);
      } else {
        break;
      }
    }
    return node;
  }

  // Unrolls x{m,n} into m copies followed by (n-m) optional copies, and
  // x{m,} into m copies followed by x*.
  Result<NodePtr> ParseBoundedRepeat(NodePtr base) {
    KOKO_CHECK(Peek() == '{');
    size_t save = pos_;
    Take();
    int lo = 0;
    bool has_lo = false;
    while (!AtEnd() && IsAsciiDigit(Peek())) {
      lo = lo * 10 + (Take() - '0');
      has_lo = true;
      if (lo > 512) return Status::ParseError("repeat bound too large");
    }
    if (!has_lo) {
      // Not a repeat after all (e.g. a literal '{'): back off.
      pos_ = save;
      auto lit = MakeNode(Node::Kind::kChar);
      AddCaseFolded(lit->klass, static_cast<unsigned char>(Take()), fold_);
      auto concat = MakeNode(Node::Kind::kConcat);
      concat->children.push_back(std::move(base));
      concat->children.push_back(std::move(lit));
      return NodePtr(std::move(concat));
    }
    int hi = lo;
    bool unbounded = false;
    if (!AtEnd() && Peek() == ',') {
      Take();
      if (!AtEnd() && Peek() == '}') {
        unbounded = true;
      } else {
        hi = 0;
        while (!AtEnd() && IsAsciiDigit(Peek())) {
          hi = hi * 10 + (Take() - '0');
          if (hi > 512) return Status::ParseError("repeat bound too large");
        }
      }
    }
    if (AtEnd() || Take() != '}') return Status::ParseError("unterminated {m,n}");
    if (!unbounded && hi < lo) return Status::ParseError("bad repeat range {m,n} with n<m");

    auto concat = MakeNode(Node::Kind::kConcat);
    for (int i = 0; i < lo; ++i) concat->children.push_back(CloneNode(*base));
    if (unbounded) {
      auto star = MakeNode(Node::Kind::kStar);
      star->children.push_back(CloneNode(*base));
      concat->children.push_back(std::move(star));
    } else {
      for (int i = lo; i < hi; ++i) {
        auto opt = MakeNode(Node::Kind::kOpt);
        opt->children.push_back(CloneNode(*base));
        concat->children.push_back(std::move(opt));
      }
    }
    if (concat->children.empty()) return NodePtr(MakeNode(Node::Kind::kEmpty));
    if (concat->children.size() == 1) return NodePtr(std::move(concat->children[0]));
    return NodePtr(std::move(concat));
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) return Status::ParseError("dangling operator in regex");
    char c = Take();
    switch (c) {
      case '(': {
        auto inner = ParseAlt();
        if (!inner.ok()) return inner.status();
        if (AtEnd() || Take() != ')') return Status::ParseError("unbalanced '('");
        return inner;
      }
      case '[':
        return ParseClass();
      case '.': {
        auto node = MakeNode(Node::Kind::kChar);
        node->klass.set();
        node->klass.reset('\n');
        return NodePtr(std::move(node));
      }
      case '^':
        return NodePtr(MakeNode(Node::Kind::kBol));
      case '$':
        return NodePtr(MakeNode(Node::Kind::kEol));
      case '\\':
        return ParseEscape();
      case '*':
      case '+':
      case '?':
        return Status::ParseError("quantifier with nothing to repeat");
      default: {
        auto node = MakeNode(Node::Kind::kChar);
        AddCaseFolded(node->klass, static_cast<unsigned char>(c), fold_);
        return NodePtr(std::move(node));
      }
    }
  }

  Result<NodePtr> ParseEscape() {
    if (AtEnd()) return Status::ParseError("trailing backslash");
    char c = Take();
    auto node = MakeNode(Node::Kind::kChar);
    switch (c) {
      case 'd':
        node->klass = DigitClass();
        break;
      case 'D':
        node->klass = ~DigitClass();
        break;
      case 'w':
        node->klass = WordClass();
        break;
      case 'W':
        node->klass = ~WordClass();
        break;
      case 's':
        node->klass = SpaceClass();
        break;
      case 'S':
        node->klass = ~SpaceClass();
        break;
      case 'n':
        node->klass.set('\n');
        break;
      case 't':
        node->klass.set('\t');
        break;
      case 'r':
        node->klass.set('\r');
        break;
      default:
        // Escaped literal (covers \. \[ \( \\ etc.).
        AddCaseFolded(node->klass, static_cast<unsigned char>(c), fold_);
        break;
    }
    return NodePtr(std::move(node));
  }

  Result<NodePtr> ParseClass() {
    auto node = MakeNode(Node::Kind::kChar);
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      Take();
      negate = true;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) return Status::ParseError("unterminated character class");
      char c = Take();
      if (c == ']' && !first) break;
      first = false;
      std::bitset<256> piece;
      if (c == '\\') {
        if (AtEnd()) return Status::ParseError("trailing backslash in class");
        char e = Take();
        switch (e) {
          case 'd': piece = DigitClass(); break;
          case 'w': piece = WordClass(); break;
          case 's': piece = SpaceClass(); break;
          case 'n': piece.set('\n'); break;
          case 't': piece.set('\t'); break;
          case 'r': piece.set('\r'); break;
          default: AddCaseFolded(piece, static_cast<unsigned char>(e), fold_); break;
        }
        node->klass |= piece;
        continue;
      }
      // Possible range c-hi.
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Take();  // '-'
        char hi = Take();
        if (hi == '\\') {
          if (AtEnd()) return Status::ParseError("trailing backslash in class");
          hi = Take();
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          return Status::ParseError("inverted range in character class");
        }
        AddRangeCaseFolded(node->klass, static_cast<unsigned char>(c),
                           static_cast<unsigned char>(hi), fold_);
      } else {
        AddCaseFolded(node->klass, static_cast<unsigned char>(c), fold_);
      }
    }
    if (negate) node->klass = ~node->klass;
    return NodePtr(std::move(node));
  }

  std::string_view pattern_;
  size_t pos_ = 0;
  bool fold_;
};

}  // namespace

// Compiles the parse tree into NFA instructions. Kept as a friend class so
// Regex::Inst stays private.
class RegexCompiler {
 public:
  static void Emit(const Node& node, Regex* re) {
    Compile(node, re);
    Regex::Inst match;
    match.op = Regex::Inst::Op::kMatch;
    re->program_.push_back(match);
  }

 private:
  using Op = Regex::Inst::Op;

  static uint32_t Here(Regex* re) { return static_cast<uint32_t>(re->program_.size()); }

  static void Compile(const Node& node, Regex* re) {
    switch (node.kind) {
      case Node::Kind::kEmpty:
        break;
      case Node::Kind::kChar: {
        Regex::Inst inst;
        inst.op = Op::kChar;
        inst.klass = node.klass;
        inst.next = Here(re) + 1;
        re->program_.push_back(inst);
        break;
      }
      case Node::Kind::kBol: {
        Regex::Inst inst;
        inst.op = Op::kAssertBol;
        inst.next = Here(re) + 1;
        re->program_.push_back(inst);
        break;
      }
      case Node::Kind::kEol: {
        Regex::Inst inst;
        inst.op = Op::kAssertEol;
        inst.next = Here(re) + 1;
        re->program_.push_back(inst);
        break;
      }
      case Node::Kind::kConcat:
        for (const auto& child : node.children) Compile(*child, re);
        break;
      case Node::Kind::kAlt: {
        // Chain of splits; each branch jumps to the common end.
        std::vector<uint32_t> jumps;
        std::vector<uint32_t> splits;
        for (size_t i = 0; i < node.children.size(); ++i) {
          uint32_t split_pc = 0;
          if (i + 1 < node.children.size()) {
            split_pc = Here(re);
            Regex::Inst split;
            split.op = Op::kSplit;
            split.next = split_pc + 1;
            re->program_.push_back(split);
            splits.push_back(split_pc);
          }
          Compile(*node.children[i], re);
          if (i + 1 < node.children.size()) {
            uint32_t jmp_pc = Here(re);
            Regex::Inst jmp;
            jmp.op = Op::kJmp;
            re->program_.push_back(jmp);
            jumps.push_back(jmp_pc);
            re->program_[splits.back()].alt = Here(re);
          }
        }
        uint32_t end = Here(re);
        for (uint32_t pc : jumps) re->program_[pc].next = end;
        break;
      }
      case Node::Kind::kStar: {
        uint32_t split_pc = Here(re);
        Regex::Inst split;
        split.op = Op::kSplit;
        split.next = split_pc + 1;
        re->program_.push_back(split);
        Compile(*node.children[0], re);
        Regex::Inst jmp;
        jmp.op = Op::kJmp;
        jmp.next = split_pc;
        re->program_.push_back(jmp);
        re->program_[split_pc].alt = Here(re);
        break;
      }
      case Node::Kind::kPlus: {
        uint32_t body_pc = Here(re);
        Compile(*node.children[0], re);
        uint32_t split_pc = Here(re);
        Regex::Inst split;
        split.op = Op::kSplit;
        split.next = body_pc;
        split.alt = split_pc + 1;
        re->program_.push_back(split);
        break;
      }
      case Node::Kind::kOpt: {
        uint32_t split_pc = Here(re);
        Regex::Inst split;
        split.op = Op::kSplit;
        split.next = split_pc + 1;
        re->program_.push_back(split);
        Compile(*node.children[0], re);
        re->program_[split_pc].alt = Here(re);
        break;
      }
    }
  }
};

Result<Regex> Regex::Compile(std::string_view pattern, Options options) {
  PatternParser parser(pattern, options.case_insensitive);
  auto tree = parser.Parse();
  if (!tree.ok()) return tree.status();
  Regex re;
  re.pattern_ = std::string(pattern);
  RegexCompiler::Emit(**tree, &re);
  return re;
}

void Regex::AddThread(std::vector<uint32_t>& list, std::vector<uint32_t>& marks,
                      uint32_t generation, uint32_t pc, size_t pos, size_t len) const {
  // Iterative epsilon-closure with an explicit stack.
  std::vector<uint32_t> stack = {pc};
  while (!stack.empty()) {
    uint32_t p = stack.back();
    stack.pop_back();
    if (marks[p] == generation) continue;
    marks[p] = generation;
    const Inst& inst = program_[p];
    switch (inst.op) {
      case Inst::Op::kJmp:
        stack.push_back(inst.next);
        break;
      case Inst::Op::kSplit:
        stack.push_back(inst.next);
        stack.push_back(inst.alt);
        break;
      case Inst::Op::kAssertBol:
        if (pos == 0) stack.push_back(inst.next);
        break;
      case Inst::Op::kAssertEol:
        if (pos == len) stack.push_back(inst.next);
        break;
      default:
        list.push_back(p);
        break;
    }
  }
}

bool Regex::Run(std::string_view text, bool anchored_start) const {
  const size_t len = text.size();
  std::vector<uint32_t> current, next;
  std::vector<uint32_t> marks(program_.size(), 0);
  uint32_t generation = 1;

  AddThread(current, marks, generation, 0, 0, len);

  for (size_t pos = 0; pos <= len; ++pos) {
    // Check for an accepting thread.
    for (uint32_t pc : current) {
      if (program_[pc].op == Inst::Op::kMatch) return true;
    }
    if (pos == len) break;
    unsigned char c = static_cast<unsigned char>(text[pos]);
    next.clear();
    ++generation;
    for (uint32_t pc : current) {
      const Inst& inst = program_[pc];
      if (inst.op == Inst::Op::kChar && inst.klass.test(c)) {
        AddThread(next, marks, generation, inst.next, pos + 1, len);
      }
    }
    if (!anchored_start) {
      // Unanchored search: also start a fresh attempt at pos+1.
      AddThread(next, marks, generation, 0, pos + 1, len);
    }
    current.swap(next);
    if (current.empty() && anchored_start) return false;
  }
  for (uint32_t pc : current) {
    if (program_[pc].op == Inst::Op::kMatch) return true;
  }
  return false;
}

bool Regex::FullMatch(std::string_view text) const {
  // Full match = anchored run where only threads that consumed the entire
  // input may accept. We get this by running anchored and checking accept
  // only at the end: simplest is to simulate with a sentinel requiring
  // pos == len at accept time. Reuse Run with a wrapper: accept early only
  // if remaining input can be consumed — instead we do a dedicated loop.
  const size_t len = text.size();
  std::vector<uint32_t> current, next;
  std::vector<uint32_t> marks(program_.size(), 0);
  uint32_t generation = 1;
  AddThread(current, marks, generation, 0, 0, len);
  for (size_t pos = 0; pos < len; ++pos) {
    unsigned char c = static_cast<unsigned char>(text[pos]);
    next.clear();
    ++generation;
    for (uint32_t pc : current) {
      const Inst& inst = program_[pc];
      if (inst.op == Inst::Op::kChar && inst.klass.test(c)) {
        AddThread(next, marks, generation, inst.next, pos + 1, len);
      }
    }
    current.swap(next);
    if (current.empty()) return false;
  }
  for (uint32_t pc : current) {
    if (program_[pc].op == Inst::Op::kMatch) return true;
  }
  return false;
}

bool Regex::PartialMatch(std::string_view text) const { return Run(text, false); }

bool RegexFullMatch(std::string_view text, std::string_view pattern) {
  auto re = Regex::Compile(pattern);
  KOKO_CHECK(re.ok());
  return re->FullMatch(text);
}

bool RegexPartialMatch(std::string_view text, std::string_view pattern) {
  auto re = Regex::Compile(pattern);
  KOKO_CHECK(re.ok());
  return re->PartialMatch(text);
}

}  // namespace koko

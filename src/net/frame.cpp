#include "net/frame.h"

#include <cstring>

namespace koko {
namespace net {

namespace {

// ---- Little-endian append helpers ------------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

void PutDoubleBits(double v, std::vector<uint8_t>* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

// ---- Bounds-checked reader -------------------------------------------------

/// Sequential reader over one payload. Every Read* returns false instead of
/// reading past `size`; decoders translate that into ParseError. No method
/// ever reads a byte it was not handed.
class PayloadReader {
 public:
  PayloadReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  /// Length-prefixed string; the prefix is validated against the bytes
  /// actually remaining, so a hostile length cannot trigger a huge
  /// allocation or an out-of-bounds read.
  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > remaining()) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool ReadDoubleBits(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated ") + what + " payload");
}

Status Trailing(const char* what) {
  return Status::ParseError(std::string(what) +
                            " payload has trailing bytes after the last field");
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kUnavailable);
}

}  // namespace

// ---- Header ----------------------------------------------------------------

void AppendFrameHeader(FrameType type, uint32_t payload_len,
                       std::vector<uint8_t>* out) {
  PutU16(kWireMagic, out);
  PutU8(kWireVersion, out);
  PutU8(static_cast<uint8_t>(type), out);
  PutU32(payload_len, out);
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  uint16_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint32_t payload_len = 0;
  if (!reader.ReadU16(&magic) || !reader.ReadU8(&version) ||
      !reader.ReadU8(&type) || !reader.ReadU32(&payload_len)) {
    return Truncated("frame header");
  }
  if (magic != kWireMagic) {
    return Status::ParseError("bad frame magic (not a KOKO wire stream)");
  }
  if (version != kWireVersion) {
    return Status::ParseError("unsupported wire version " +
                              std::to_string(version));
  }
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Status::ParseError("unknown frame type " + std::to_string(type));
  }
  if (payload_len > kMaxFramePayload) {
    return Status::ParseError("frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the protocol maximum");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.payload_len = payload_len;
  return header;
}

// ---- Encoders --------------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const NetRequest& request) {
  std::vector<uint8_t> out;
  PutString(request.query_text, &out);
  PutU64(request.max_rows, &out);
  uint8_t flags = 0;
  if (request.streaming) flags |= kReqFlagStreaming;
  if (!request.use_planner) flags |= kReqFlagPlannerOff;
  if (!request.allow_batch) flags |= kReqFlagNoBatch;
  PutU8(flags, &out);
  return out;
}

std::vector<uint8_t> EncodeHeaderPayload(
    const std::vector<std::string>& output_names) {
  std::vector<uint8_t> out;
  PutU32(static_cast<uint32_t>(output_names.size()), &out);
  for (const std::string& name : output_names) PutString(name, &out);
  return out;
}

std::vector<uint8_t> EncodeRowsPayload(const std::vector<ResultRow>& rows,
                                       size_t begin, size_t count) {
  std::vector<uint8_t> out;
  PutU32(static_cast<uint32_t>(count), &out);
  for (size_t i = begin; i < begin + count; ++i) {
    const ResultRow& row = rows[i];
    PutU32(row.doc, &out);
    PutU32(row.sid, &out);
    PutU16(static_cast<uint16_t>(row.values.size()), &out);
    PutU16(static_cast<uint16_t>(row.scores.size()), &out);
    for (const std::string& value : row.values) PutString(value, &out);
    for (double score : row.scores) PutDoubleBits(score, &out);
  }
  return out;
}

std::vector<uint8_t> EncodeDonePayload(const NetDone& done) {
  std::vector<uint8_t> out;
  PutU64(done.rows, &out);
  PutU64(done.candidate_sentences, &out);
  PutU64(done.scanned_candidates, &out);
  PutU8(done.early_terminated ? 1 : 0, &out);
  PutU8(done.batched ? 1 : 0, &out);
  return out;
}

std::vector<uint8_t> EncodeErrorPayload(StatusCode code,
                                        const std::string& message) {
  std::vector<uint8_t> out;
  PutU8(static_cast<uint8_t>(code), &out);
  PutString(message, &out);
  return out;
}

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendFrameHeader(type, static_cast<uint32_t>(payload.size()), &out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// ---- Decoders --------------------------------------------------------------

Result<NetRequest> DecodeRequest(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  NetRequest request;
  if (!reader.ReadString(&request.query_text)) return Truncated("request");
  uint8_t flags = 0;
  if (!reader.ReadU64(&request.max_rows) || !reader.ReadU8(&flags)) {
    return Truncated("request");
  }
  if (!reader.exhausted()) return Trailing("request");
  if ((flags & ~(kReqFlagStreaming | kReqFlagPlannerOff | kReqFlagNoBatch)) !=
      0) {
    return Status::ParseError("request carries unknown flag bits");
  }
  if (request.query_text.empty()) {
    return Status::ParseError("request query text is empty");
  }
  request.streaming = (flags & kReqFlagStreaming) != 0;
  request.use_planner = (flags & kReqFlagPlannerOff) == 0;
  request.allow_batch = (flags & kReqFlagNoBatch) == 0;
  return request;
}

Result<std::vector<std::string>> DecodeHeaderPayload(const uint8_t* data,
                                                     size_t size) {
  PayloadReader reader(data, size);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("header");
  // Each name costs at least its 4-byte length prefix; a count the payload
  // cannot back is rejected before any allocation.
  if (count > reader.remaining() / 4) {
    return Status::ParseError("header column count exceeds payload capacity");
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return Truncated("header");
    names.push_back(std::move(name));
  }
  if (!reader.exhausted()) return Trailing("header");
  return names;
}

Result<std::vector<ResultRow>> DecodeRowsPayload(const uint8_t* data,
                                                 size_t size) {
  PayloadReader reader(data, size);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("rows");
  // A row costs at least doc + sid + the two element counts (12 bytes).
  if (count > reader.remaining() / 12) {
    return Status::ParseError("rows count exceeds payload capacity");
  }
  std::vector<ResultRow> rows;
  rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ResultRow row;
    uint16_t num_values = 0;
    uint16_t num_scores = 0;
    if (!reader.ReadU32(&row.doc) || !reader.ReadU32(&row.sid) ||
        !reader.ReadU16(&num_values) || !reader.ReadU16(&num_scores)) {
      return Truncated("rows");
    }
    if (num_values > reader.remaining() / 4 ||
        num_scores > reader.remaining() / 8) {
      return Status::ParseError("row element count exceeds payload capacity");
    }
    row.values.reserve(num_values);
    for (uint16_t v = 0; v < num_values; ++v) {
      std::string value;
      if (!reader.ReadString(&value)) return Truncated("rows");
      row.values.push_back(std::move(value));
    }
    row.scores.reserve(num_scores);
    for (uint16_t s = 0; s < num_scores; ++s) {
      double score = 0;
      if (!reader.ReadDoubleBits(&score)) return Truncated("rows");
      row.scores.push_back(score);
    }
    rows.push_back(std::move(row));
  }
  if (!reader.exhausted()) return Trailing("rows");
  return rows;
}

Result<NetDone> DecodeDonePayload(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  NetDone done;
  uint8_t early = 0;
  uint8_t batched = 0;
  if (!reader.ReadU64(&done.rows) ||
      !reader.ReadU64(&done.candidate_sentences) ||
      !reader.ReadU64(&done.scanned_candidates) || !reader.ReadU8(&early) ||
      !reader.ReadU8(&batched)) {
    return Truncated("done");
  }
  if (!reader.exhausted()) return Trailing("done");
  if (early > 1 || batched > 1) {
    return Status::ParseError("done payload has non-boolean flag byte");
  }
  done.early_terminated = early == 1;
  done.batched = batched == 1;
  return done;
}

Result<NetError> DecodeErrorPayload(const uint8_t* data, size_t size) {
  PayloadReader reader(data, size);
  uint8_t code = 0;
  NetError error;
  if (!reader.ReadU8(&code) || !reader.ReadString(&error.message)) {
    return Truncated("error");
  }
  if (!reader.exhausted()) return Trailing("error");
  if (!ValidStatusCode(code) || code == static_cast<uint8_t>(StatusCode::kOk)) {
    return Status::ParseError("error payload carries invalid status code " +
                              std::to_string(code));
  }
  error.code = static_cast<StatusCode>(code);
  return error;
}

}  // namespace net
}  // namespace koko

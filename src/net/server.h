#ifndef KOKO_NET_SERVER_H_
#define KOKO_NET_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <thread>

#include "net/frame.h"
#include "net/socket.h"
#include "serve/batcher.h"
#include "serve/query_service.h"
#include "util/thread_annotations.h"

namespace koko {
namespace net {

/// \brief The network serving front end: a TCP server speaking the KOKO
/// wire protocol (net/frame.h, docs/WIRE_PROTOCOL.md) over one shared
/// QueryService.
///
/// Layering is strict: KokoServer owns sockets and frames, QueryService
/// owns everything else — admission control, the shared thread pool, the
/// persistent score/plan caches, and the engine over the (typically
/// mmap'd) index. Every connection therefore shares the same caches and
/// the same admission bounds as in-process callers, and the wire adds no
/// execution semantics of its own: a served response is byte-identical to
/// `QueryService::Run` for the same request (the golden-digest contract,
/// tests/net_serve_test.cpp).
///
/// **Threading.** One acceptor thread plus one thread per live connection
/// (connections are long-lived and request-per-frame, so the per-thread
/// cost is a blocked read; query parallelism happens inside the service's
/// pool, not here). Finished connection threads are reaped on the next
/// accept.
///
/// **Batch admission.** Concurrently-arriving requests whose execution
/// fingerprints match (canonical query text + row cap + planner toggle —
/// RequestFingerprint, serve/batcher.h) are grouped behind one execution:
/// one leader runs DPLI/plan/score once, followers wait and share the
/// leader's rows. Responses mark `batched` in the kDone frame. Disable
/// per-request (kReqFlagNoBatch) or server-wide (Options::enable_batching).
///
/// **Graceful shutdown.** Stop() (idempotent; also run by the destructor)
/// drains via the service's AdmissionQueue::Shutdown — queued waiters
/// reject with Unavailable, already-admitted queries finish and their
/// responses flush — then unblocks the listener and every connection
/// socket and joins all threads. A client mid-stream observes either its
/// complete response or a clean connection close, never a torn frame
/// (frames are written whole; see net_serve_test's
/// ShutdownWhileStreamingIsClean).
class KokoServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read back via port()).
    uint16_t port = 0;
    /// Bind 127.0.0.1 only (tests/benches); false binds INADDR_ANY.
    bool loopback_only = true;
    /// Coalesce same-fingerprint concurrent requests (see class comment).
    bool enable_batching = true;
  };

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t requests = 0;        ///< Well-formed requests executed.
    uint64_t responses_ok = 0;    ///< kDone-terminated responses.
    uint64_t responses_error = 0; ///< kError-terminated responses.
    uint64_t protocol_errors = 0; ///< Malformed frames/payloads received.
    BatchExecutor::Stats batch;
  };

  /// `service` is borrowed and must outlive the server. Stop() shuts the
  /// service's admission queue down, so a service is dedicated to (at
  /// most) one server for its lifetime.
  KokoServer(QueryService* service, const Options& options);
  ~KokoServer();

  KokoServer(const KokoServer&) = delete;
  KokoServer& operator=(const KokoServer&) = delete;

  /// Binds, listens, and starts the acceptor. Fails on bind errors.
  Status Start();

  /// Graceful shutdown; safe to call twice. Blocks until every connection
  /// thread has exited.
  void Stop();

  /// Bound port (valid after Start()).
  uint16_t port() const { return port_; }

  Stats stats() const KOKO_EXCLUDES(mu_);

 private:
  struct Conn {
    Socket socket;
    std::thread thread;
    bool done = false;  ///< Set by the connection thread as it exits.
  };

  void AcceptLoop();
  void ServeConnection(Conn* conn);
  /// Executes one well-formed request and writes its response frames.
  /// Returns false when the connection should close (write failure).
  bool HandleRequest(Conn* conn, const NetRequest& request);
  /// Best-effort error frame; returns false when the write failed.
  bool SendError(Socket* socket, StatusCode code, const std::string& message);
  /// Reaps finished connection threads (joins and erases).
  void ReapFinished() KOKO_EXCLUDES(mu_);

  QueryService* service_;
  const Options options_;
  BatchExecutor batcher_;
  ListenSocket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  bool started_ = false;
  bool stopped_ = false;

  mutable Mutex mu_;
  /// std::list: Conn addresses must be stable while their threads run.
  std::list<std::unique_ptr<Conn>> conns_ KOKO_GUARDED_BY(mu_);
  bool stopping_ KOKO_GUARDED_BY(mu_) = false;
  uint64_t connections_accepted_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t requests_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t responses_ok_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t responses_error_ KOKO_GUARDED_BY(mu_) = 0;
  uint64_t protocol_errors_ KOKO_GUARDED_BY(mu_) = 0;
};

}  // namespace net
}  // namespace koko

#endif  // KOKO_NET_SERVER_H_

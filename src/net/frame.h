#ifndef KOKO_NET_FRAME_H_
#define KOKO_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "koko/engine.h"
#include "util/status.h"

namespace koko {
namespace net {

/// \file The KOKO wire protocol: a length-prefixed binary framing over one
/// byte stream (docs/WIRE_PROTOCOL.md is the normative description).
///
/// Every frame is an 8-byte header followed by `payload_len` payload bytes:
///
///     offset  size  field
///     0       2     magic        0x4B4F ("KO"), little-endian u16
///     2       1     version      kWireVersion (1)
///     3       1     type         FrameType
///     4       4     payload_len  little-endian u32, <= kMaxFramePayload
///
/// All integers are little-endian; doubles travel as the raw IEEE-754 bit
/// pattern in a u64. The codec is pure (bytes in, values out) so the
/// adversarial suites (tests/net_protocol_test.cpp, net_fuzz_test.cpp) can
/// hammer it without sockets: every decoder bounds-checks each read against
/// the payload it was handed, rejects trailing garbage, and caps every
/// element count by the bytes that could possibly back it, so no input —
/// truncated, oversized, or random — reads out of bounds or allocates
/// unboundedly.
///
/// A conversation is: client sends one kRequest frame, server answers with
/// kHeader, zero or more kRows, then one terminal kDone — or a single
/// kError at any point. The connection is persistent: after a terminal
/// frame the client may send its next request on the same stream.

inline constexpr uint16_t kWireMagic = 0x4B4F;  // "KO"
inline constexpr uint8_t kWireVersion = 1;

/// Hard ceiling on a frame payload. Large result sets are chunked into
/// many kRows frames well below this; a length prefix above it is treated
/// as a protocol violation (likely garbage or an attack), not an
/// allocation request.
inline constexpr uint32_t kMaxFramePayload = 8u * 1024 * 1024;

/// Rows per kRows frame the server packs before flushing (streaming
/// responses flush partial chunks as the engine produces rows).
inline constexpr size_t kRowsPerFrame = 256;

enum class FrameType : uint8_t {
  kRequest = 1,  ///< client -> server: one query + options
  kHeader = 2,   ///< server -> client: output column names
  kRows = 3,     ///< server -> client: a chunk of result rows
  kDone = 4,     ///< server -> client: terminal status + stats
  kError = 5,    ///< server -> client: terminal error (code + message)
};

/// Frame header in decoded form.
struct FrameHeader {
  FrameType type = FrameType::kError;
  uint32_t payload_len = 0;
};

inline constexpr size_t kFrameHeaderSize = 8;

/// Request flag bits (NetRequest::flags on the wire).
inline constexpr uint8_t kReqFlagStreaming = 1u << 0;  ///< chunk rows early
inline constexpr uint8_t kReqFlagPlannerOff = 1u << 1;
inline constexpr uint8_t kReqFlagNoBatch = 1u << 2;    ///< opt out of coalescing

/// One query request as it travels the wire.
struct NetRequest {
  std::string query_text;
  /// 0 = unlimited; otherwise the per-request row cap (EngineOptions::
  /// max_rows with streaming early termination).
  uint64_t max_rows = 0;
  bool streaming = false;
  bool use_planner = true;
  /// When false the server must not coalesce this request into a batch
  /// group (it still executes normally).
  bool allow_batch = true;
};

/// Terminal stats frame of a successful response.
struct NetDone {
  uint64_t rows = 0;
  uint64_t candidate_sentences = 0;
  uint64_t scanned_candidates = 0;
  bool early_terminated = false;
  /// True when this response was served as a follower of a batch group
  /// (the rows came from another request's execution — byte-identical by
  /// the coalescing contract, see docs/WIRE_PROTOCOL.md).
  bool batched = false;
};

/// Terminal error frame.
struct NetError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

// ---- Header ----------------------------------------------------------------

/// Appends the 8-byte frame header for `type`/`payload_len` to `out`.
/// `payload_len` must already respect kMaxFramePayload (callers build the
/// payload first).
void AppendFrameHeader(FrameType type, uint32_t payload_len,
                       std::vector<uint8_t>* out);

/// Decodes and validates an 8-byte header: magic, version, known type,
/// payload_len <= kMaxFramePayload. `data` must hold at least
/// kFrameHeaderSize bytes.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t size);

// ---- Payload encoders ------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const NetRequest& request);
std::vector<uint8_t> EncodeHeaderPayload(
    const std::vector<std::string>& output_names);
/// Encodes rows[begin, begin+count) as one kRows payload.
std::vector<uint8_t> EncodeRowsPayload(const std::vector<ResultRow>& rows,
                                       size_t begin, size_t count);
std::vector<uint8_t> EncodeDonePayload(const NetDone& done);
std::vector<uint8_t> EncodeErrorPayload(StatusCode code,
                                        const std::string& message);

/// Convenience: header + payload as one contiguous frame.
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

// ---- Payload decoders ------------------------------------------------------

/// Every decoder consumes exactly `size` bytes or fails: short payloads,
/// element counts that cannot fit, and trailing bytes are all ParseError.
Result<NetRequest> DecodeRequest(const uint8_t* data, size_t size);
Result<std::vector<std::string>> DecodeHeaderPayload(const uint8_t* data,
                                                     size_t size);
Result<std::vector<ResultRow>> DecodeRowsPayload(const uint8_t* data,
                                                 size_t size);
Result<NetDone> DecodeDonePayload(const uint8_t* data, size_t size);
Result<NetError> DecodeErrorPayload(const uint8_t* data, size_t size);

}  // namespace net
}  // namespace koko

#endif  // KOKO_NET_FRAME_H_

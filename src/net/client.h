#ifndef KOKO_NET_CLIENT_H_
#define KOKO_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"

namespace koko {
namespace net {

/// One fully-received wire response, reassembled from frames.
struct WireResult {
  /// OK for a kDone-terminated response; the server's error for kError.
  Status status;
  std::vector<std::string> output_names;
  std::vector<ResultRow> rows;
  NetDone done;
  /// Row chunks received before the terminal frame (>= 1 per kRows frame;
  /// streaming responses typically deliver several).
  size_t row_frames = 0;
};

/// \brief Blocking client for the KOKO wire protocol.
///
/// One connection, sequential request/response — the shape the tests and
/// the bench's closed-loop workers need. Validates every received frame as
/// strictly as the server validates requests: bad magic, oversized
/// lengths, or out-of-order frames fail the call instead of being
/// tolerated (the client side of the parity net must not paper over
/// server framing bugs).
class KokoClient {
 public:
  /// Connects to 127.0.0.1:port. `recv_timeout_seconds` bounds every
  /// blocking read so a wedged server fails a test instead of hanging it.
  static Result<KokoClient> Connect(uint16_t port,
                                    int recv_timeout_seconds = 30);

  KokoClient() = default;
  KokoClient(KokoClient&&) noexcept = default;
  KokoClient& operator=(KokoClient&&) noexcept = default;

  bool valid() const { return socket_.valid(); }

  /// Sends one request and reads frames through the terminal kDone/kError.
  /// A transport or framing failure returns its error; a server-reported
  /// error returns OK at the transport level with WireResult::status
  /// carrying the server's code (the caller distinguishes "the wire broke"
  /// from "the server said no").
  Result<WireResult> Query(const NetRequest& request);

  /// Sends raw bytes verbatim (fuzzing hook; no framing added).
  Status SendRaw(const std::vector<uint8_t>& bytes);

  /// Reads one frame (header + payload). Used by fuzz tests to observe
  /// how the server answers garbage: expect a kError frame or a closed
  /// connection (NotFound/IoError), never a hang.
  Result<std::pair<FrameHeader, std::vector<uint8_t>>> ReadFrame();

  /// Half-closes the write side (server sees EOF and closes cleanly).
  void FinishWrites();

 private:
  explicit KokoClient(Socket socket) : socket_(std::move(socket)) {}

  Socket socket_;
};

}  // namespace net
}  // namespace koko

#endif  // KOKO_NET_CLIENT_H_

#include "net/client.h"

#include <sys/socket.h>

#include <utility>

namespace koko {
namespace net {

Result<KokoClient> KokoClient::Connect(uint16_t port,
                                       int recv_timeout_seconds) {
  auto socket = ConnectLoopback(port, recv_timeout_seconds);
  if (!socket.ok()) return socket.status();
  return KokoClient(std::move(*socket));
}

Status KokoClient::SendRaw(const std::vector<uint8_t>& bytes) {
  return socket_.WriteAll(bytes);
}

void KokoClient::FinishWrites() {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

Result<std::pair<FrameHeader, std::vector<uint8_t>>> KokoClient::ReadFrame() {
  std::vector<uint8_t> header(kFrameHeaderSize);
  KOKO_RETURN_IF_ERROR(socket_.ReadFully(header.data(), header.size()));
  KOKO_ASSIGN_OR_RETURN(FrameHeader frame,
                        DecodeFrameHeader(header.data(), header.size()));
  std::vector<uint8_t> payload(frame.payload_len);
  if (frame.payload_len > 0) {
    KOKO_RETURN_IF_ERROR(socket_.ReadFully(payload.data(), payload.size()));
  }
  return std::make_pair(frame, std::move(payload));
}

Result<WireResult> KokoClient::Query(const NetRequest& request) {
  KOKO_RETURN_IF_ERROR(
      socket_.WriteAll(EncodeFrame(FrameType::kRequest,
                                   EncodeRequest(request))));
  WireResult result;
  bool saw_header = false;
  while (true) {
    KOKO_ASSIGN_OR_RETURN(auto frame, ReadFrame());
    const FrameHeader& header = frame.first;
    const std::vector<uint8_t>& payload = frame.second;
    switch (header.type) {
      case FrameType::kHeader: {
        if (saw_header) {
          return Status::ParseError("duplicate header frame in response");
        }
        KOKO_ASSIGN_OR_RETURN(
            result.output_names,
            DecodeHeaderPayload(payload.data(), payload.size()));
        saw_header = true;
        break;
      }
      case FrameType::kRows: {
        if (!saw_header) {
          return Status::ParseError("rows frame before header frame");
        }
        KOKO_ASSIGN_OR_RETURN(
            std::vector<ResultRow> rows,
            DecodeRowsPayload(payload.data(), payload.size()));
        ++result.row_frames;
        for (ResultRow& row : rows) result.rows.push_back(std::move(row));
        break;
      }
      case FrameType::kDone: {
        if (!saw_header) {
          return Status::ParseError("done frame before header frame");
        }
        KOKO_ASSIGN_OR_RETURN(result.done,
                              DecodeDonePayload(payload.data(),
                                                payload.size()));
        if (result.done.rows != result.rows.size()) {
          return Status::ParseError(
              "done frame row count disagrees with received rows");
        }
        result.status = Status::OK();
        return result;
      }
      case FrameType::kError: {
        KOKO_ASSIGN_OR_RETURN(NetError error,
                              DecodeErrorPayload(payload.data(),
                                                 payload.size()));
        result.status = Status(error.code, error.message);
        return result;
      }
      case FrameType::kRequest:
        return Status::ParseError("server sent a request frame");
    }
  }
}

}  // namespace net
}  // namespace koko

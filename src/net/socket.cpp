#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace koko {
namespace net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::ReadFully(uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0) return Status::NotFound("peer closed the connection");
      return Status::IoError("connection closed mid-frame (" +
                             std::to_string(done) + " of " +
                             std::to_string(size) + " bytes)");
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("recv"));
  }
  return Status::OK();
}

Status Socket::WriteAll(const uint8_t* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(Errno("send"));
  }
  return Status::OK();
}

void Socket::Unblock() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::Listen(uint16_t port, bool loopback_only,
                                          int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(Errno("bind"));
  }
  if (::listen(fd, backlog) != 0) return Status::IoError(Errno("listen"));
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::IoError(Errno("getsockname"));
  }
  ListenSocket listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> ListenSocket::Accept() {
  while (true) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      // Frames are small and latency-sensitive; never Nagle-delay them.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // EINVAL/EBADF after Unblock()/Close: the shutdown path, not an error
    // worth logging per-iteration.
    return Status::Unavailable(Errno("accept"));
  }
}

Result<Socket> ConnectLoopback(uint16_t port, int recv_timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Status::IoError(Errno("connect"));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_seconds > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return sock;
}

}  // namespace net
}  // namespace koko

#include "net/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "koko/parser.h"

namespace koko {
namespace net {

namespace {

/// Builds the RunOverrides a wire request maps to. max_rows 0 means "no
/// override" — the service default (typically unlimited) applies.
QueryService::RunOverrides OverridesFor(const NetRequest& request) {
  QueryService::RunOverrides overrides;
  if (request.max_rows > 0) {
    overrides.max_rows = static_cast<size_t>(request.max_rows);
  }
  overrides.use_planner = request.use_planner;
  return overrides;
}

}  // namespace

KokoServer::KokoServer(QueryService* service, const Options& options)
    : service_(service), options_(options) {}

KokoServer::~KokoServer() { Stop(); }

Status KokoServer::Start() {
  auto listener = ListenSocket::Listen(options_.port, options_.loopback_only);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void KokoServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  // Drain order: reject queued admissions first (in-flight queries finish
  // and their responses flush), then take down the sockets so blocked
  // reads return and the threads can observe stopping_.
  service_->admission().Shutdown();
  listener_.Unblock();
  {
    MutexLock lock(mu_);
    for (auto& conn : conns_) conn->socket.Unblock();
  }
  if (acceptor_.joinable()) acceptor_.join();
  // After the acceptor exits no new conns are created; joining outside the
  // lock keeps connection-thread exits (which briefly take mu_) deadlock
  // free.
  std::list<std::unique_ptr<Conn>> conns;
  {
    MutexLock lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

KokoServer::Stats KokoServer::stats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.connections_accepted = connections_accepted_;
  stats.requests = requests_;
  stats.responses_ok = responses_ok_;
  stats.responses_error = responses_error_;
  stats.protocol_errors = protocol_errors_;
  stats.batch = batcher_.stats();
  return stats;
}

void KokoServer::ReapFinished() {
  std::list<std::unique_ptr<Conn>> finished;
  {
    MutexLock lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void KokoServer::AcceptLoop() {
  while (true) {
    auto accepted = listener_.Accept();
    {
      MutexLock lock(mu_);
      if (stopping_) return;  // Unblock() during Stop(): normal exit.
    }
    if (!accepted.ok()) return;  // listener failed outside shutdown
    ReapFinished();
    auto conn = std::make_unique<Conn>();
    conn->socket = std::move(*accepted);
    Conn* raw = conn.get();
    MutexLock lock(mu_);
    if (stopping_) return;  // raced Stop(); conn closes via unique_ptr
    ++connections_accepted_;
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

bool KokoServer::SendError(Socket* socket, StatusCode code,
                           const std::string& message) {
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kError, EncodeErrorPayload(code, message));
  {
    MutexLock lock(mu_);
    ++responses_error_;
  }
  return socket->WriteAll(frame).ok();
}

void KokoServer::ServeConnection(Conn* conn) {
  std::vector<uint8_t> header(kFrameHeaderSize);
  std::vector<uint8_t> payload;
  while (true) {
    {
      MutexLock lock(mu_);
      if (stopping_) break;
    }
    const Status read = conn->socket.ReadFully(header.data(), header.size());
    if (!read.ok()) break;  // clean EOF, peer reset, or Stop()'s Unblock
    auto frame = DecodeFrameHeader(header.data(), header.size());
    if (!frame.ok() || frame->type != FrameType::kRequest) {
      // The stream cannot be resynchronized after a bad or unexpected
      // header; answer with one error frame and close.
      {
        MutexLock lock(mu_);
        ++protocol_errors_;
      }
      SendError(&conn->socket, StatusCode::kParseError,
                frame.ok() ? "unexpected frame type (want request)"
                           : frame.status().message());
      break;
    }
    payload.resize(frame->payload_len);
    if (frame->payload_len > 0 &&
        !conn->socket.ReadFully(payload.data(), payload.size()).ok()) {
      break;
    }
    auto request = DecodeRequest(payload.data(), payload.size());
    if (!request.ok()) {
      {
        MutexLock lock(mu_);
        ++protocol_errors_;
      }
      SendError(&conn->socket, StatusCode::kParseError,
                request.status().message());
      break;  // framing intact but the peer speaks garbage: close
    }
    if (!HandleRequest(conn, *request)) break;
  }
  conn->socket.Close();
  MutexLock lock(mu_);
  conn->done = true;
}

bool KokoServer::HandleRequest(Conn* conn, const NetRequest& request) {
  {
    MutexLock lock(mu_);
    ++requests_;
  }
  auto parsed = ParseQuery(request.query_text);
  if (!parsed.ok()) {
    // A syntactically bad query is the client's problem, not the
    // connection's: answer with the parse error and keep serving.
    return SendError(&conn->socket, parsed.status().code(),
                     parsed.status().message());
  }
  const Query& query = *parsed;

  // The header frame precedes execution: output names are a pure function
  // of the parsed query (compile copies query.outputs verbatim), and the
  // streaming path needs them on the wire before the first row chunk.
  std::vector<std::string> output_names;
  output_names.reserve(query.outputs.size());
  for (const auto& spec : query.outputs) output_names.push_back(spec.var);
  if (!conn->socket
           .WriteAll(EncodeFrame(FrameType::kHeader,
                                 EncodeHeaderPayload(output_names)))
           .ok()) {
    return false;
  }

  const QueryService::RunOverrides overrides = OverridesFor(request);

  // Streaming leaders flush row chunks from inside the engine's sink;
  // write failures must not abort the query (a batch group may be sharing
  // this execution), so the sink latches the failure and goes quiet.
  bool write_failed = false;
  std::vector<ResultRow> chunk;
  auto flush_chunk = [&]() {
    if (write_failed || chunk.empty()) return;
    const std::vector<uint8_t> frame = EncodeFrame(
        FrameType::kRows, EncodeRowsPayload(chunk, 0, chunk.size()));
    if (!conn->socket.WriteAll(frame).ok()) write_failed = true;
    chunk.clear();
  };
  RowSink sink;
  if (request.streaming) {
    sink = [&](const ResultRow& row) {
      if (write_failed) return;
      chunk.push_back(row);
      if (chunk.size() >= kRowsPerFrame) flush_chunk();
    };
  }

  bool follower = false;
  std::shared_ptr<const Result<QueryResult>> shared;
  auto execute = [&]() {
    return service_->Run(query, overrides, sink);
  };
  if (options_.enable_batching && request.allow_batch) {
    const uint64_t fingerprint =
        RequestFingerprint(query, request.max_rows, request.use_planner);
    BatchExecutor::Outcome outcome = batcher_.Run(fingerprint, execute);
    shared = std::move(outcome.result);
    follower = outcome.follower;
  } else {
    shared = std::make_shared<const Result<QueryResult>>(execute());
  }
  const Result<QueryResult>& result = *shared;

  if (!result.ok()) {
    return SendError(&conn->socket, result.status().code(),
                     result.status().message());
  }
  if (request.streaming && !follower) {
    flush_chunk();  // the tail chunk below kRowsPerFrame
  } else {
    // Non-streaming responses and batch followers (whose rows come from
    // the leader's execution) send the complete row set in chunks.
    const std::vector<ResultRow>& rows = result->rows;
    for (size_t begin = 0; begin < rows.size() && !write_failed;
         begin += kRowsPerFrame) {
      const size_t count = std::min(kRowsPerFrame, rows.size() - begin);
      const std::vector<uint8_t> frame =
          EncodeFrame(FrameType::kRows, EncodeRowsPayload(rows, begin, count));
      if (!conn->socket.WriteAll(frame).ok()) write_failed = true;
    }
  }
  if (write_failed) return false;

  NetDone done;
  done.rows = result->rows.size();
  done.candidate_sentences = result->candidate_sentences;
  done.scanned_candidates = result->scanned_candidates;
  done.early_terminated = result->early_terminated;
  done.batched = follower;
  if (!conn->socket
           .WriteAll(EncodeFrame(FrameType::kDone, EncodeDonePayload(done)))
           .ok()) {
    return false;
  }
  MutexLock lock(mu_);
  ++responses_ok_;
  return true;
}

}  // namespace net
}  // namespace koko

#ifndef KOKO_NET_SOCKET_H_
#define KOKO_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace koko {
namespace net {

/// \file Minimal RAII POSIX socket wrappers for the serving front end.
///
/// Dependency-free by design (the container bakes in no networking
/// libraries): plain blocking TCP over loopback/INADDR_ANY with the few
/// behaviors the server actually needs — full-buffer reads and writes that
/// retry EINTR and partial transfers, SIGPIPE suppressed per-send, and an
/// Unblock() that shuts the fd down so a peer blocked in read()/accept()
/// returns immediately (the graceful-shutdown wake-up, see
/// KokoServer::Stop).

/// Owns one file descriptor; moves transfer ownership, the destructor
/// closes. Thread-compat: Unblock() (shutdown(2)) may race a concurrent
/// Read/Write on the same fd — that is its purpose — but Close()/
/// destruction must not.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `size` bytes. kIoError on EOF mid-buffer or a socket
  /// error; NotFound when the peer closed cleanly before the first byte
  /// (the idle-connection EOF the server treats as "client hung up").
  Status ReadFully(uint8_t* data, size_t size);

  /// Writes the whole buffer (MSG_NOSIGNAL: a dead peer yields a Status,
  /// never a SIGPIPE).
  Status WriteAll(const uint8_t* data, size_t size);
  Status WriteAll(const std::vector<uint8_t>& data) {
    return WriteAll(data.data(), data.size());
  }

  /// shutdown(2) both directions: any thread blocked in ReadFully/WriteAll
  /// on this socket returns with an error. The fd stays open (safe to race
  /// with concurrent I/O); Close()/destruction reclaims it later.
  void Unblock();

  void Close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Binds with SO_REUSEADDR; port 0 picks an
/// ephemeral port (read it back via port()).
class ListenSocket {
 public:
  /// `loopback_only` binds 127.0.0.1 (the test/bench configuration);
  /// otherwise INADDR_ANY.
  static Result<ListenSocket> Listen(uint16_t port, bool loopback_only = true,
                                     int backlog = 64);

  ListenSocket() = default;
  ListenSocket(ListenSocket&&) noexcept = default;
  ListenSocket& operator=(ListenSocket&&) noexcept = default;

  bool valid() const { return socket_.valid(); }
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. kUnavailable once Unblock() (or a
  /// close) has taken the listener down — the accept loop's exit signal.
  Result<Socket> Accept();

  /// Wakes a blocked Accept(); subsequent accepts fail fast.
  void Unblock() { socket_.Unblock(); }

 private:
  Socket socket_;
  uint16_t port_ = 0;
};

/// Blocking connect to 127.0.0.1:`port`, with an optional receive timeout
/// (seconds; 0 = no timeout) so a wedged peer cannot hang a test forever.
Result<Socket> ConnectLoopback(uint16_t port, int recv_timeout_seconds = 0);

}  // namespace net
}  // namespace koko

#endif  // KOKO_NET_SOCKET_H_

#include "ner/entity_recognizer.h"

#include "text/lexicon.h"
#include "util/string_util.h"

namespace koko {

namespace {

constexpr std::string_view kGpe[] = {
    "china", "japan", "beijing", "tokyo", "paris", "france", "london",
    "england", "berlin", "germany", "rome", "italy", "madrid", "spain",
    "portland", "seattle", "austin", "denver", "chicago", "boston",
    "brooklyn", "oakland", "kyoto", "osaka", "seoul", "korea", "india",
    "delhi", "mumbai", "sydney", "australia", "toronto", "canada",
    "vienna", "austria", "oslo", "norway", "lisbon", "dublin", "ireland",
    "prague", "helsinki", "finland", "athens", "greece", "cairo", "egypt",
    "lima", "peru", "bogota", "colombia", "quito", "ecuador", "nairobi",
    "kenya", "hanoi", "vietnam", "bangkok", "thailand", "manila",
};

constexpr std::string_view kFirstNames[] = {
    "anna",  "alys",  "vera",   "cyd",   "john",  "mary",   "james", "linda",
    "david", "sarah", "michael", "emma",  "daniel", "sofia",  "lucas", "maria",
    "peter", "alice", "henry",  "clara", "george", "ivy",    "oscar", "nora",
    "felix", "ruth",  "hugo",   "elsa",  "leo",    "ada",    "max",   "iris",
    "tom",   "jane",  "paul",   "rosa",  "carl",   "nina",   "eric",  "lena",
};

constexpr std::string_view kFacilityKeywords[] = {
    "stadium", "park", "arena", "center", "centre", "museum", "library",
    "airport", "mall", "theater", "theatre", "plaza", "gym", "hall",
    "garden", "gardens", "zoo", "bridge", "tower", "hospital",
};

constexpr std::string_view kOrgKeywords[] = {
    "inc", "corp", "labs", "ltd", "university", "college", "institute",
    "company", "magazine", "society", "association", "press",
};

constexpr std::string_view kTeamKeywords[] = {
    "united", "fc", "city", "rovers", "tigers", "eagles", "wolves",
    "sharks", "hawks", "bears", "lions", "dynamo", "athletic", "rangers",
};

bool IsYear(const std::string& tok) {
  if (tok.size() != 4 || !IsAllDigits(tok)) return false;
  int y = std::stoi(tok);
  return y >= 1400 && y <= 2100;
}

bool IsDayNumber(const std::string& tok) {
  if (tok.empty() || tok.size() > 2 || !IsAllDigits(tok)) return false;
  int d = std::stoi(tok);
  return d >= 1 && d <= 31;
}

}  // namespace

EntityRecognizer::EntityRecognizer() {
  for (auto w : kGpe) phrase_types_.emplace(std::string(w), EntityType::kGpe);
  for (auto w : kFirstNames) person_first_names_.insert(std::string(w));
  for (auto w : kFacilityKeywords) facility_keywords_.insert(std::string(w));
  for (auto w : kOrgKeywords) org_keywords_.insert(std::string(w));
  for (auto w : kTeamKeywords) team_keywords_.insert(std::string(w));
}

void EntityRecognizer::AddGazetteer(EntityType type,
                                    const std::vector<std::string>& phrases) {
  for (const auto& p : phrases) phrase_types_[ToLower(p)] = type;
}

bool EntityRecognizer::InGazetteer(EntityType type,
                                   std::string_view lower_phrase) const {
  auto it = phrase_types_.find(std::string(lower_phrase));
  if (it != phrase_types_.end() && it->second == type) return true;
  // Person membership: the first token is a known first name.
  if (type == EntityType::kPerson) {
    std::string first(lower_phrase.substr(0, lower_phrase.find(' ')));
    return person_first_names_.count(first) > 0;
  }
  return false;
}

EntityType EntityRecognizer::ClassifyMention(const Sentence& s, int begin,
                                             int end) const {
  // Whole-phrase gazetteer match first.
  std::string phrase = ToLower(s.SpanText(begin, end));
  auto it = phrase_types_.find(phrase);
  if (it != phrase_types_.end()) return it->second;

  // Keyword-based typing on individual tokens.
  for (int i = begin; i <= end; ++i) {
    std::string low = ToLower(s.tokens[i].text);
    auto pt = phrase_types_.find(low);
    if (pt != phrase_types_.end() && begin == end) return pt->second;
    if (facility_keywords_.count(low)) return EntityType::kFacility;
    if (org_keywords_.count(low)) return EntityType::kOrganization;
  }
  // Team names: "<Word> <TeamKeyword>" ("Oakland United").
  if (end > begin) {
    std::string last = ToLower(s.tokens[end].text);
    if (team_keywords_.count(last)) return EntityType::kTeam;
  }
  // Person: first token is a known first name.
  if (person_first_names_.count(ToLower(s.tokens[begin].text))) {
    return EntityType::kPerson;
  }
  // Single-token gazetteer member inside a multiword mention ("Portland
  // Roasters" is not a GPE); fall through to OTHER.
  return EntityType::kOther;
}

void EntityRecognizer::Annotate(Sentence* sentence) const {
  Sentence& s = *sentence;
  const int n = s.size();
  s.entities.clear();
  for (auto& t : s.tokens) {
    t.etype = EntityType::kNone;
    t.entity_id = -1;
  }
  const Lexicon& lex = Lexicon::Get();

  int i = 0;
  while (i < n) {
    const Token& tok = s.tokens[i];
    std::string low = ToLower(tok.text);

    // Date expressions: "1 December 1900", "December 1900", "1911".
    if (lex.IsMonth(low) || IsYear(tok.text)) {
      int begin = i;
      int end = i;
      if (lex.IsMonth(low)) {
        if (i > 0 && IsDayNumber(s.tokens[i - 1].text) &&
            s.tokens[i - 1].entity_id == -1) {
          begin = i - 1;
        }
        if (i + 1 < n && IsYear(s.tokens[i + 1].text)) end = i + 1;
      }
      Entity e{begin, end, EntityType::kDate};
      int id = static_cast<int>(s.entities.size());
      s.entities.push_back(e);
      for (int k = begin; k <= end; ++k) {
        s.tokens[k].etype = EntityType::kDate;
        s.tokens[k].entity_id = id;
      }
      i = end + 1;
      continue;
    }

    // Capitalised / proper-noun runs.
    bool starts_mention =
        tok.pos == PosTag::kPropn ||
        (IsCapitalized(tok.text) && i > 0 && !lex.IsFunctionWord(low) &&
         tok.pos != PosTag::kPunct &&
         (tok.pos == PosTag::kNoun || phrase_types_.count(low) > 0));
    // Sentence-initial capitalised words only when gazetteer-known or the
    // tagger already called them PROPN.
    if (i == 0 && tok.pos != PosTag::kPropn) {
      starts_mention = IsCapitalized(tok.text) && phrase_types_.count(low) > 0;
    }
    if (!starts_mention) {
      ++i;
      continue;
    }
    int begin = i;
    int end = i;
    while (end + 1 < n) {
      const Token& next = s.tokens[end + 1];
      std::string nlow = ToLower(next.text);
      bool continues = next.pos == PosTag::kPropn ||
                       (IsCapitalized(next.text) && next.pos != PosTag::kPunct) ||
                       (next.pos == PosTag::kNoun &&
                        (facility_keywords_.count(nlow) > 0 ||
                         org_keywords_.count(nlow) > 0));
      if (!continues) break;
      ++end;
    }
    EntityType type = ClassifyMention(s, begin, end);
    Entity e{begin, end, type};
    int id = static_cast<int>(s.entities.size());
    s.entities.push_back(e);
    for (int k = begin; k <= end; ++k) {
      s.tokens[k].etype = type;
      s.tokens[k].entity_id = id;
    }
    i = end + 1;
  }

  // Common-noun mentions: maximal runs of NOUN tokens become entities of
  // type OTHER, matching the paper's entity index which contains
  // "cheesecake", "grocery store" and "chocolate ice cream" (Example 3.2).
  i = 0;
  while (i < n) {
    if (s.tokens[i].pos != PosTag::kNoun || s.tokens[i].entity_id != -1) {
      ++i;
      continue;
    }
    int begin = i;
    int end = i;
    while (end + 1 < n && s.tokens[end + 1].pos == PosTag::kNoun &&
           s.tokens[end + 1].entity_id == -1) {
      ++end;
    }
    Entity e{begin, end, EntityType::kOther};
    int id = static_cast<int>(s.entities.size());
    s.entities.push_back(e);
    for (int k = begin; k <= end; ++k) {
      s.tokens[k].etype = EntityType::kOther;
      s.tokens[k].entity_id = id;
    }
    i = end + 1;
  }
}

}  // namespace koko

#ifndef KOKO_NER_ENTITY_RECOGNIZER_H_
#define KOKO_NER_ENTITY_RECOGNIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/document.h"

namespace koko {

/// \brief Gazetteer + heuristic named-entity recogniser.
///
/// Stands in for the spaCy / Google-NL entity annotators. Mentions are
/// maximal runs of proper-noun/capitalised tokens plus date expressions.
/// Types come from built-in gazetteers (cities/countries -> GPE, first
/// names -> PERSON, facility and organisation keywords, team suffixes) with
/// OTHER as the fallback — matching the paper's "Entity type: OTHER"
/// annotations. Additional user dictionaries can be registered (the paper's
/// `dict("Location")` excluding clause relies on this).
class EntityRecognizer {
 public:
  /// Recogniser with the built-in gazetteers.
  EntityRecognizer();

  /// Registers extra surface forms for a type (lower-cased matching).
  void AddGazetteer(EntityType type, const std::vector<std::string>& phrases);

  /// Detects entities in a sentence whose tokens/POS are populated; fills
  /// Sentence::entities and the per-token etype/entity_id fields.
  void Annotate(Sentence* sentence) const;

  /// True when `phrase` (lower-cased) is a known member of `type`'s
  /// gazetteer. Used by dict(...) query conditions.
  bool InGazetteer(EntityType type, std::string_view lower_phrase) const;

 private:
  EntityType ClassifyMention(const Sentence& s, int begin, int end) const;

  std::unordered_map<std::string, EntityType> phrase_types_;
  std::unordered_set<std::string> person_first_names_;
  std::unordered_set<std::string> facility_keywords_;
  std::unordered_set<std::string> org_keywords_;
  std::unordered_set<std::string> team_keywords_;
};

}  // namespace koko

#endif  // KOKO_NER_ENTITY_RECOGNIZER_H_

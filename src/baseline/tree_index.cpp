#include "baseline/tree_index.h"

namespace koko {

double IndexEffectiveness(const AnnotatedCorpus& corpus,
                          const std::vector<PathQuery>& paths,
                          const std::vector<uint32_t>& candidates) {
  if (candidates.empty()) return 1.0;
  size_t good = 0;
  for (uint32_t sid : candidates) {
    const Sentence& s = corpus.sentence(sid);
    bool all = true;
    for (const PathQuery& path : paths) {
      if (!SentenceHasPathMatch(s, path)) {
        all = false;
        break;
      }
    }
    if (all) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(candidates.size());
}

}  // namespace koko

#include "baseline/subtree_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/timer.h"

namespace koko {

namespace {

// Canonical code of a chain a -> b ("a(b)") or a -> b -> c ("a(b(c))"),
// and of a two-child star ("a(b,c)" with b <= c).
std::string Chain2(std::string_view a, std::string_view b) {
  std::string code(a);
  code += '(';
  code += b;
  code += ')';
  return code;
}

std::string Chain3(std::string_view a, std::string_view b, std::string_view c) {
  std::string code(a);
  code += '(';
  code += b;
  code += '(';
  code += c;
  code += "))";
  return code;
}

std::string Star3(std::string_view a, std::string_view b, std::string_view c) {
  std::string_view lo = b <= c ? b : c;
  std::string_view hi = b <= c ? c : b;
  std::string code(a);
  code += '(';
  code += lo;
  code += ',';
  code += hi;
  code += ')';
  return code;
}

void EmitSubtreesForSentence(const Sentence& s, uint32_t sid, bool use_pos,
                             Table* table) {
  auto label = [&](int t) -> std::string_view {
    return use_pos ? PosTagName(s.tokens[t].pos) : DepLabelName(s.tokens[t].label);
  };
  // Per-sentence dedup of (code, root) pairs.
  std::unordered_set<std::string> seen;
  auto emit = [&](std::string code, int root_tid) {
    std::string key = code + "#" + std::to_string(root_tid);
    if (!seen.insert(key).second) return;
    KOKO_CHECK_OK(table->AppendRow({std::move(code), static_cast<int64_t>(sid),
                                    static_cast<int64_t>(root_tid)}));
  };
  for (int t = 0; t < s.size(); ++t) {
    emit(std::string(label(t)), t);
    const auto& kids = s.children[t];
    for (size_t i = 0; i < kids.size(); ++i) {
      emit(Chain2(label(t), label(kids[i])), t);
      // Grandparent chains.
      for (int grand : s.children[kids[i]]) {
        emit(Chain3(label(t), label(kids[i]), label(grand)), t);
      }
      // Two-child stars.
      for (size_t j = i + 1; j < kids.size(); ++j) {
        emit(Star3(label(t), label(kids[i]), label(kids[j])), t);
      }
    }
  }
}

}  // namespace

std::unique_ptr<SubtreeIndex> SubtreeIndex::Build(const AnnotatedCorpus& corpus) {
  WallTimer timer;
  auto index = std::unique_ptr<SubtreeIndex>(new SubtreeIndex());
  index->pl_ = index->catalog_.CreateTable("SUB_PL", {{"code", ColumnType::kString},
                                                      {"sid", ColumnType::kInt64},
                                                      {"root", ColumnType::kInt64}});
  index->pos_ = index->catalog_.CreateTable("SUB_POS",
                                            {{"code", ColumnType::kString},
                                             {"sid", ColumnType::kInt64},
                                             {"root", ColumnType::kInt64}});
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    EmitSubtreesForSentence(s, sid, /*use_pos=*/false, index->pl_);
    EmitSubtreesForSentence(s, sid, /*use_pos=*/true, index->pos_);
  }
  KOKO_CHECK_OK(index->pl_->CreateIndex("sub_pl_code", {"code"}));
  KOKO_CHECK_OK(index->pos_->CreateIndex("sub_pos_code", {"code"}));
  index->build_seconds_ = timer.ElapsedSeconds();
  return index;
}

size_t SubtreeIndex::NumKeys() const {
  std::unordered_set<std::string> keys;
  for (uint32_t row = 0; row < pl_->NumRows(); ++row) {
    keys.insert(pl_->GetString(row, 0));
  }
  size_t pl_keys = keys.size();
  keys.clear();
  for (uint32_t row = 0; row < pos_->NumRows(); ++row) {
    keys.insert(pos_->GetString(row, 0));
  }
  return pl_keys + keys.size();
}

Result<std::vector<uint32_t>> SubtreeIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  // Supported queries: child axes only, no wildcards, each step constrained
  // by exactly one of {parse label, POS tag} and the whole path uses one
  // label kind (the limitations of root-split coding; §6.2.1).
  std::unordered_set<uint32_t> survivors;
  bool first = true;
  for (const PathQuery& path : paths) {
    bool any_dep = false;
    bool any_pos = false;
    for (const PathStep& step : path.steps) {
      if (step.axis == PathStep::Axis::kDescendant) {
        return Status::Unimplemented("SUBTREE: descendant axis unsupported");
      }
      const NodeConstraint& c = step.constraint;
      if (c.word || c.regex || c.etype || c.any_entity) {
        return Status::Unimplemented("SUBTREE: word attributes unsupported");
      }
      if (c.IsWildcard()) {
        return Status::Unimplemented("SUBTREE: wildcards unsupported");
      }
      if (c.dep) any_dep = true;
      if (c.pos) any_pos = true;
    }
    if (any_dep && any_pos) {
      return Status::Unimplemented("SUBTREE: mixed label kinds on one path");
    }
    const bool use_pos = any_pos;
    const Table* table = use_pos ? pos_ : pl_;
    const std::string index_name = use_pos ? "sub_pos_code" : "sub_pl_code";
    auto label_at = [&](size_t i) -> std::string {
      const NodeConstraint& c = path.steps[i].constraint;
      return use_pos ? std::string(PosTagName(*c.pos))
                     : std::string(DepLabelName(*c.dep));
    };

    // Decompose the chain into overlapping segments of length <= mss:
    // positions [0..2], [2..4], [4..6], ... (overlap on one node).
    std::unordered_set<uint32_t> path_sids;
    bool first_segment = true;
    size_t n = path.steps.size();
    size_t start = 0;
    while (true) {
      size_t end = std::min(n - 1, start + 2);
      std::string code;
      if (end == start) {
        code = label_at(start);
      } else if (end == start + 1) {
        code = Chain2(label_at(start), label_at(start + 1));
      } else {
        code = Chain3(label_at(start), label_at(start + 1), label_at(start + 2));
      }
      auto rows = table->IndexLookup(index_name, {code});
      if (!rows.ok()) return rows.status();
      std::unordered_set<uint32_t> sids;
      for (uint32_t row : *rows) {
        sids.insert(static_cast<uint32_t>(table->GetInt(row, 1)));
      }
      if (first_segment) {
        path_sids = std::move(sids);
        first_segment = false;
      } else {
        std::unordered_set<uint32_t> merged;
        for (uint32_t sid : path_sids) {
          if (sids.count(sid) > 0) merged.insert(sid);
        }
        path_sids = std::move(merged);
      }
      if (end >= n - 1 || path_sids.empty()) break;
      start = end;  // overlap on the boundary node
    }

    if (first) {
      survivors = std::move(path_sids);
      first = false;
    } else {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : survivors) {
        if (path_sids.count(sid) > 0) merged.insert(sid);
      }
      survivors = std::move(merged);
    }
    if (survivors.empty()) break;
  }
  if (first) {
    return Status::InvalidArgument("SUBTREE: empty pattern");
  }
  std::vector<uint32_t> out(survivors.begin(), survivors.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace koko

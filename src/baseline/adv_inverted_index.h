#ifndef KOKO_BASELINE_ADV_INVERTED_INDEX_H_
#define KOKO_BASELINE_ADV_INVERTED_INDEX_H_

#include <memory>
#include <string>

#include "baseline/tree_index.h"
#include "storage/table.h"
#include "text/document.h"

namespace koko {

/// \brief The ADVINVERTED baseline — Bird et al.'s LPath indexing (§6.2.1).
///
/// One table P(label, sid, tid, left, right, depth, pid) with a B-tree on
/// `label` (three rows per token, like INVERTED, but carrying structural
/// columns). Path queries are evaluated by joining the posting lists of
/// consecutive constrained steps with parent (pid) / ancestor
/// (left-right-depth containment) conditions — precise, but every join runs
/// over whole-corpus per-label posting lists, which is what makes it slower
/// than the hierarchy-index approach at equal effectiveness.
class AdvInvertedIndex : public TreeIndex {
 public:
  static std::unique_ptr<AdvInvertedIndex> Build(const AnnotatedCorpus& corpus);

  std::string_view name() const override { return "ADVINVERTED"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return catalog_.MemoryUsage(); }

 private:
  struct AdvPosting {
    uint32_t sid, tid, left, right, depth;
    int32_t pid;  // parent token id, -1 for root
  };

  AdvInvertedIndex() = default;
  std::vector<AdvPosting> Fetch(const std::string& key) const;
  Result<std::vector<AdvPosting>> FetchConstraint(const NodeConstraint& c) const;

  Catalog catalog_;
  Table* p_ = nullptr;
};

}  // namespace koko

#endif  // KOKO_BASELINE_ADV_INVERTED_INDEX_H_

#ifndef KOKO_BASELINE_SUBTREE_INDEX_H_
#define KOKO_BASELINE_SUBTREE_INDEX_H_

#include <memory>
#include <string>

#include "baseline/tree_index.h"
#include "storage/table.h"
#include "text/document.h"

namespace koko {

/// \brief The SUBTREE baseline — Chubak & Rafiei's subtree interval index
/// with mss = 3 and root-split coding (§6.2.1).
///
/// Every unique subtree of up to `mss` nodes (single nodes, parent-child
/// pairs, two-child stars, and grandparent chains) becomes an index key (a
/// canonical code string rooted at the subtree root — the "root-split"
/// form); postings are (sid, root tid). Because constituency trees have one
/// label kind but dependency trees carry both parse labels and POS tags,
/// two SUBTREE indices are built (as the paper does) and their results are
/// joined at the root nodes.
///
/// Limitations faithfully reproduced: no wildcard steps and no word
/// attributes (root-split coding cannot express them), so only a subset of
/// the Synthetic Tree benchmark is supported; and joining decomposed
/// subtrees at their roots does not guarantee that they bind the same
/// tokens, which costs effectiveness on multi-variable queries.
class SubtreeIndex : public TreeIndex {
 public:
  static constexpr int kMaxSubtreeSize = 3;  // the paper's mss

  static std::unique_ptr<SubtreeIndex> Build(const AnnotatedCorpus& corpus);

  std::string_view name() const override { return "SUBTREE"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return catalog_.MemoryUsage(); }

  /// Number of distinct subtree keys (both label kinds).
  size_t NumKeys() const;

 private:
  SubtreeIndex() = default;

  Catalog catalog_;
  Table* pl_ = nullptr;   // SUB(code, sid, root_tid) over parse labels
  Table* pos_ = nullptr;  // same over POS tags
};

}  // namespace koko

#endif  // KOKO_BASELINE_SUBTREE_INDEX_H_

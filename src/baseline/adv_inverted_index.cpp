#include "baseline/adv_inverted_index.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "baseline/inverted_index.h"
#include "util/logging.h"
#include "util/timer.h"

namespace koko {

std::unique_ptr<AdvInvertedIndex> AdvInvertedIndex::Build(
    const AnnotatedCorpus& corpus) {
  WallTimer timer;
  auto index = std::unique_ptr<AdvInvertedIndex>(new AdvInvertedIndex());
  index->p_ = index->catalog_.CreateTable("P", {{"label", ColumnType::kString},
                                                {"sid", ColumnType::kInt64},
                                                {"tid", ColumnType::kInt64},
                                                {"left", ColumnType::kInt64},
                                                {"right", ColumnType::kInt64},
                                                {"depth", ColumnType::kInt64},
                                                {"pid", ColumnType::kInt64}});
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    for (int t = 0; t < s.size(); ++t) {
      const Token& tok = s.tokens[t];
      std::vector<Cell> base = {std::string(),
                                static_cast<int64_t>(sid),
                                static_cast<int64_t>(t),
                                static_cast<int64_t>(s.subtree_left[t]),
                                static_cast<int64_t>(s.subtree_right[t]),
                                static_cast<int64_t>(s.depth[t]),
                                static_cast<int64_t>(tok.head)};
      base[0] = "w:" + tok.text;
      KOKO_CHECK_OK(index->p_->AppendRow(base));
      base[0] = "l:" + std::string(DepLabelName(tok.label));
      KOKO_CHECK_OK(index->p_->AppendRow(base));
      base[0] = "p:" + std::string(PosTagName(tok.pos));
      KOKO_CHECK_OK(index->p_->AppendRow(base));
    }
  }
  KOKO_CHECK_OK(index->p_->CreateIndex("p_label", {"label"}));
  index->build_seconds_ = timer.ElapsedSeconds();
  return index;
}

std::vector<AdvInvertedIndex::AdvPosting> AdvInvertedIndex::Fetch(
    const std::string& key) const {
  auto rows = p_->IndexLookup("p_label", {key});
  KOKO_CHECK(rows.ok());
  std::vector<AdvPosting> out;
  out.reserve(rows->size());
  for (uint32_t row : *rows) {
    AdvPosting p;
    p.sid = static_cast<uint32_t>(p_->GetInt(row, 1));
    p.tid = static_cast<uint32_t>(p_->GetInt(row, 2));
    p.left = static_cast<uint32_t>(p_->GetInt(row, 3));
    p.right = static_cast<uint32_t>(p_->GetInt(row, 4));
    p.depth = static_cast<uint32_t>(p_->GetInt(row, 5));
    p.pid = static_cast<int32_t>(p_->GetInt(row, 6));
    out.push_back(p);
  }
  return out;
}

Result<std::vector<AdvInvertedIndex::AdvPosting>> AdvInvertedIndex::FetchConstraint(
    const NodeConstraint& c) const {
  // Intersect the postings of every label this constraint mentions, on
  // (sid, tid).
  std::vector<std::string> keys = ConstraintLabelKeys(c);
  if (keys.empty()) {
    return Status::InvalidArgument(
        "ADVINVERTED cannot fetch postings for a wildcard step");
  }
  std::vector<AdvPosting> current = Fetch(keys[0]);
  for (size_t i = 1; i < keys.size() && !current.empty(); ++i) {
    std::unordered_set<uint64_t> tokens;
    for (const AdvPosting& p : Fetch(keys[i])) {
      tokens.insert((static_cast<uint64_t>(p.sid) << 32) | p.tid);
    }
    std::vector<AdvPosting> merged;
    for (const AdvPosting& p : current) {
      if (tokens.count((static_cast<uint64_t>(p.sid) << 32) | p.tid) > 0) {
        merged.push_back(p);
      }
    }
    current = std::move(merged);
  }
  return current;
}

Result<std::vector<uint32_t>> AdvInvertedIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  std::unordered_set<uint32_t> survivors;
  bool first_path = true;
  for (const PathQuery& path : paths) {
    // Positions of constrained steps along the path.
    std::vector<int> anchors;
    for (int i = 0; i < static_cast<int>(path.steps.size()); ++i) {
      if (!ConstraintLabelKeys(path.steps[static_cast<size_t>(i)].constraint)
               .empty()) {
        anchors.push_back(i);
      }
    }
    if (anchors.empty()) continue;  // unconstrained path: prunes nothing

    // Depth relationship helper over steps (from, to].
    auto delta = [&](int from, int to) {
      uint32_t steps = 0;
      bool exact = true;
      for (int i = from + 1; i <= to; ++i) {
        ++steps;
        if (path.steps[static_cast<size_t>(i)].axis == PathStep::Axis::kDescendant) {
          exact = false;
        }
      }
      return std::pair<uint32_t, bool>(steps, exact);
    };

    KOKO_ASSIGN_OR_RETURN(
        std::vector<AdvPosting> current,
        FetchConstraint(path.steps[static_cast<size_t>(anchors[0])].constraint));
    // Root anchoring for the first constrained step.
    {
      auto [steps, exact] = delta(-1, anchors[0]);
      std::vector<AdvPosting> filtered;
      for (const AdvPosting& p : current) {
        uint32_t want = steps - 1;  // virtual root sits above depth 0
        if (exact ? p.depth == want : p.depth >= want) filtered.push_back(p);
      }
      current = std::move(filtered);
    }
    for (size_t a = 1; a + 0 < anchors.size() && !current.empty(); ++a) {
      KOKO_ASSIGN_OR_RETURN(
          std::vector<AdvPosting> next,
          FetchConstraint(path.steps[static_cast<size_t>(anchors[a])].constraint));
      auto [steps, exact] = delta(anchors[a - 1], anchors[a]);
      // Join: keep `next` elements that have an ancestor in `current` at
      // the required depth relationship (pid equality when adjacent).
      std::unordered_map<uint32_t, std::vector<const AdvPosting*>> by_sid;
      for (const AdvPosting& p : current) by_sid[p.sid].push_back(&p);
      std::vector<AdvPosting> joined;
      for (const AdvPosting& child : next) {
        auto it = by_sid.find(child.sid);
        if (it == by_sid.end()) continue;
        for (const AdvPosting* anc : it->second) {
          bool ok;
          if (steps == 1 && exact) {
            ok = child.pid == static_cast<int32_t>(anc->tid);
          } else {
            bool contains = anc->left <= child.left && anc->right >= child.right;
            bool depth_ok = exact ? child.depth == anc->depth + steps
                                  : child.depth >= anc->depth + steps;
            ok = contains && depth_ok;
          }
          if (ok) {
            joined.push_back(child);
            break;
          }
        }
      }
      current = std::move(joined);
    }

    std::unordered_set<uint32_t> sids;
    for (const AdvPosting& p : current) sids.insert(p.sid);
    if (first_path) {
      survivors = std::move(sids);
      first_path = false;
    } else {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : survivors) {
        if (sids.count(sid) > 0) merged.insert(sid);
      }
      survivors = std::move(merged);
    }
    if (survivors.empty()) break;
  }
  if (first_path) {
    return Status::InvalidArgument(
        "ADVINVERTED cannot evaluate all-wildcard patterns");
  }
  std::vector<uint32_t> out(survivors.begin(), survivors.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace koko

#ifndef KOKO_BASELINE_KOKO_ADAPTER_H_
#define KOKO_BASELINE_KOKO_ADAPTER_H_

#include <memory>

#include "baseline/tree_index.h"
#include "index/koko_index.h"
#include "index/path_lookup.h"

namespace koko {

/// \brief KOKO's multi-index behind the TreeIndex interface (for the §6.2
/// head-to-head index comparisons).
///
/// Each path runs through the decomposed DPLI lookup (hierarchy indices +
/// word index, Algorithm 1); candidates are the intersection of the
/// per-path sentence-id sets.
class KokoTreeIndex : public TreeIndex {
 public:
  static std::unique_ptr<KokoTreeIndex> Build(const AnnotatedCorpus& corpus);

  /// Wraps an already built index (does not take ownership).
  explicit KokoTreeIndex(const KokoIndex* index) : index_(index) {}

  std::string_view name() const override { return "KOKO"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return index_->MemoryUsage(); }

  const KokoIndex& index() const { return *index_; }

 private:
  std::unique_ptr<KokoIndex> owned_;
  const KokoIndex* index_ = nullptr;
};

}  // namespace koko

#endif  // KOKO_BASELINE_KOKO_ADAPTER_H_

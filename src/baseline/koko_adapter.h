#ifndef KOKO_BASELINE_KOKO_ADAPTER_H_
#define KOKO_BASELINE_KOKO_ADAPTER_H_

#include <memory>

#include "baseline/tree_index.h"
#include "index/koko_index.h"
#include "index/path_lookup.h"
#include "index/sharded_index.h"

namespace koko {

/// \brief KOKO's multi-index behind the TreeIndex interface (for the §6.2
/// head-to-head index comparisons).
///
/// Each path runs through the decomposed DPLI lookup (hierarchy indices +
/// word index, Algorithm 1); candidates are the intersection of the
/// per-path sentence-id sets.
class KokoTreeIndex : public TreeIndex {
 public:
  static std::unique_ptr<KokoTreeIndex> Build(const AnnotatedCorpus& corpus);

  /// Wraps an already built index (does not take ownership).
  explicit KokoTreeIndex(const KokoIndex* index) : index_(index) {}

  std::string_view name() const override { return "KOKO"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return index_->MemoryUsage(); }

  const KokoIndex& index() const { return *index_; }

 private:
  std::unique_ptr<KokoIndex> owned_;
  const KokoIndex* index_ = nullptr;
};

/// \brief The shipped sharded configuration behind the same TreeIndex
/// interface.
///
/// Each shard is a complete KokoIndex over a contiguous global-sid range,
/// so the per-path DPLI lookup and the per-path intersection both run
/// shard-locally and the shard results concatenate in shard order into the
/// globally sorted candidate list — the same distribution identity the
/// engine's shard-parallel DPLI relies on. Candidates are element-for-
/// element identical to KokoTreeIndex over the monolithic build; the §6.2
/// figures exercise what production serves.
class ShardedKokoTreeIndex : public TreeIndex {
 public:
  static std::unique_ptr<ShardedKokoTreeIndex> Build(
      const AnnotatedCorpus& corpus, size_t num_shards);

  /// Wraps an already built index (does not take ownership).
  explicit ShardedKokoTreeIndex(const ShardedKokoIndex* index)
      : index_(index) {}

  std::string_view name() const override { return "KOKO"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return index_->MemoryUsage(); }

  const ShardedKokoIndex& index() const { return *index_; }

 private:
  std::unique_ptr<ShardedKokoIndex> owned_;
  const ShardedKokoIndex* index_ = nullptr;
};

}  // namespace koko

#endif  // KOKO_BASELINE_KOKO_ADAPTER_H_

#include "baseline/koko_adapter.h"

#include <algorithm>
#include <unordered_set>

#include "util/timer.h"

namespace koko {

namespace {

/// Per-path DPLI lookup + cross-path intersection over one KokoIndex.
/// Shared by the monolithic adapter and (per shard) the sharded one.
Result<std::vector<uint32_t>> CandidatesFromIndex(
    const KokoIndex& index, const std::vector<PathQuery>& paths) {
  std::unordered_set<uint32_t> survivors;
  bool first = true;
  for (const PathQuery& path : paths) {
    PathLookupResult result = KokoPathLookup(index, path);
    if (result.unconstrained) continue;
    std::unordered_set<uint32_t> sids;
    for (const Quintuple& q : result.postings) sids.insert(q.sid);
    if (first) {
      survivors = std::move(sids);
      first = false;
    } else {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : survivors) {
        if (sids.count(sid) > 0) merged.insert(sid);
      }
      survivors = std::move(merged);
    }
    if (survivors.empty()) break;
  }
  if (first) {
    return Status::InvalidArgument("KOKO: all-wildcard pattern prunes nothing");
  }
  std::vector<uint32_t> out(survivors.begin(), survivors.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::unique_ptr<KokoTreeIndex> KokoTreeIndex::Build(const AnnotatedCorpus& corpus) {
  WallTimer timer;
  auto owned = KokoIndex::Build(corpus);
  auto adapter = std::make_unique<KokoTreeIndex>(owned.get());
  adapter->owned_ = std::move(owned);
  adapter->build_seconds_ = timer.ElapsedSeconds();
  return adapter;
}

Result<std::vector<uint32_t>> KokoTreeIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  return CandidatesFromIndex(*index_, paths);
}

std::unique_ptr<ShardedKokoTreeIndex> ShardedKokoTreeIndex::Build(
    const AnnotatedCorpus& corpus, size_t num_shards) {
  WallTimer timer;
  auto owned = ShardedKokoIndex::Build(corpus, num_shards);
  auto adapter = std::make_unique<ShardedKokoTreeIndex>(owned.get());
  adapter->owned_ = std::move(owned);
  adapter->build_seconds_ = timer.ElapsedSeconds();
  return adapter;
}

Result<std::vector<uint32_t>> ShardedKokoTreeIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  // Intersection distributes over the sid-range partition: shard-local
  // candidates concatenated in shard order equal the monolithic answer
  // (ranges are disjoint and ascending, stored sids are global).
  std::vector<uint32_t> out;
  for (size_t s = 0; s < index_->num_shards(); ++s) {
    auto shard_candidates = CandidatesFromIndex(index_->shard(s), paths);
    if (!shard_candidates.ok()) return shard_candidates.status();
    out.insert(out.end(), shard_candidates->begin(), shard_candidates->end());
  }
  return out;
}

}  // namespace koko

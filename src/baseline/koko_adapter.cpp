#include "baseline/koko_adapter.h"

#include <algorithm>
#include <unordered_set>

#include "util/timer.h"

namespace koko {

std::unique_ptr<KokoTreeIndex> KokoTreeIndex::Build(const AnnotatedCorpus& corpus) {
  WallTimer timer;
  auto owned = KokoIndex::Build(corpus);
  auto adapter = std::make_unique<KokoTreeIndex>(owned.get());
  adapter->owned_ = std::move(owned);
  adapter->build_seconds_ = timer.ElapsedSeconds();
  return adapter;
}

Result<std::vector<uint32_t>> KokoTreeIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  std::unordered_set<uint32_t> survivors;
  bool first = true;
  for (const PathQuery& path : paths) {
    PathLookupResult result = KokoPathLookup(*index_, path);
    if (result.unconstrained) continue;
    std::unordered_set<uint32_t> sids;
    for (const Quintuple& q : result.postings) sids.insert(q.sid);
    if (first) {
      survivors = std::move(sids);
      first = false;
    } else {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : survivors) {
        if (sids.count(sid) > 0) merged.insert(sid);
      }
      survivors = std::move(merged);
    }
    if (survivors.empty()) break;
  }
  if (first) {
    return Status::InvalidArgument("KOKO: all-wildcard pattern prunes nothing");
  }
  std::vector<uint32_t> out(survivors.begin(), survivors.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace koko

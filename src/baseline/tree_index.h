#ifndef KOKO_BASELINE_TREE_INDEX_H_
#define KOKO_BASELINE_TREE_INDEX_H_

#include <string_view>
#include <vector>

#include "index/path.h"
#include "text/document.h"
#include "util/status.h"

namespace koko {

/// \brief Common interface of the four indexing schemes compared in §6.2.
///
/// A query is a tree pattern decomposed into root-anchored paths (one per
/// node variable). CandidateSentences returns sentence ids that *may*
/// contain bindings for all paths — complete but possibly unsound, exactly
/// what the paper's "index effectiveness" metric measures:
///
///     effectiveness = |{candidates with true bindings}| / |candidates|.
class TreeIndex {
 public:
  virtual ~TreeIndex() = default;

  virtual std::string_view name() const = 0;

  /// Candidate sentence ids for a (multi-path) tree pattern. Returns
  /// Unimplemented when the scheme cannot express the query (e.g. SUBTREE
  /// with wildcards or word attributes).
  virtual Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const = 0;

  /// Heap footprint in bytes.
  virtual size_t MemoryUsage() const = 0;

  double build_seconds() const { return build_seconds_; }

 protected:
  double build_seconds_ = 0;
};

/// Measures effectiveness of `candidates` for `paths` against the
/// brute-force matcher. Returns 1.0 for an empty candidate set.
double IndexEffectiveness(const AnnotatedCorpus& corpus,
                          const std::vector<PathQuery>& paths,
                          const std::vector<uint32_t>& candidates);

}  // namespace koko

#endif  // KOKO_BASELINE_TREE_INDEX_H_

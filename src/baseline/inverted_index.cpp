#include "baseline/inverted_index.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/timer.h"

namespace koko {

std::vector<std::string> ConstraintLabelKeys(const NodeConstraint& c) {
  std::vector<std::string> keys;
  if (c.word) keys.push_back("w:" + *c.word);
  if (c.dep) keys.push_back("l:" + std::string(DepLabelName(*c.dep)));
  if (c.pos) keys.push_back("p:" + std::string(PosTagName(*c.pos)));
  return keys;
}

std::unique_ptr<InvertedIndex> InvertedIndex::Build(const AnnotatedCorpus& corpus) {
  WallTimer timer;
  auto index = std::unique_ptr<InvertedIndex>(new InvertedIndex());
  index->p_ = index->catalog_.CreateTable("P", {{"label", ColumnType::kString},
                                                {"sid", ColumnType::kInt64},
                                                {"tid", ColumnType::kInt64}});
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    for (int t = 0; t < s.size(); ++t) {
      const Token& tok = s.tokens[t];
      int64_t x = sid;
      int64_t y = t;
      KOKO_CHECK_OK(index->p_->AppendRow({"w:" + tok.text, x, y}));
      KOKO_CHECK_OK(index->p_->AppendRow(
          {"l:" + std::string(DepLabelName(tok.label)), x, y}));
      KOKO_CHECK_OK(
          index->p_->AppendRow({"p:" + std::string(PosTagName(tok.pos)), x, y}));
    }
  }
  KOKO_CHECK_OK(index->p_->CreateIndex("p_label", {"label"}));
  index->build_seconds_ = timer.ElapsedSeconds();
  return index;
}

Result<std::vector<uint32_t>> InvertedIndex::CandidateSentences(
    const std::vector<PathQuery>& paths) const {
  // Gather every label key used anywhere in the pattern.
  std::vector<std::string> keys;
  for (const PathQuery& path : paths) {
    for (const PathStep& step : path.steps) {
      for (auto& k : ConstraintLabelKeys(step.constraint)) keys.push_back(k);
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument("INVERTED cannot evaluate all-wildcard patterns");
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  // Intersect sentence-id sets label by label (the nested-SQL evaluation of
  // §6.2.1, which considers labels only).
  std::unordered_set<uint32_t> current;
  bool first = true;
  for (const std::string& key : keys) {
    auto rows = p_->IndexLookup("p_label", {key});
    if (!rows.ok()) return rows.status();
    std::unordered_set<uint32_t> sids;
    sids.reserve(rows->size());
    for (uint32_t row : *rows) {
      sids.insert(static_cast<uint32_t>(p_->GetInt(row, 1)));
    }
    if (first) {
      current = std::move(sids);
      first = false;
    } else {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : current) {
        if (sids.count(sid) > 0) merged.insert(sid);
      }
      current = std::move(merged);
    }
    if (current.empty()) break;
  }
  std::vector<uint32_t> out(current.begin(), current.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace koko

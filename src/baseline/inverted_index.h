#ifndef KOKO_BASELINE_INVERTED_INDEX_H_
#define KOKO_BASELINE_INVERTED_INDEX_H_

#include <memory>
#include <string>

#include "baseline/tree_index.h"
#include "storage/table.h"
#include "text/document.h"

namespace koko {

/// \brief The paper's INVERTED baseline (§6.2.1).
///
/// One table P(label, sentence_id, token_id) with a B-tree on `label`;
/// every token contributes three rows (its word, its parse label, its POS
/// tag — the three label kinds queries can mention, disambiguated by a
/// kind prefix). A query's candidates are the sentences that contain *all*
/// labels appearing in the query, with no structural conditions at all —
/// hence large intermediate results, long intersection times, and low
/// effectiveness on hierarchical queries.
class InvertedIndex : public TreeIndex {
 public:
  static std::unique_ptr<InvertedIndex> Build(const AnnotatedCorpus& corpus);

  std::string_view name() const override { return "INVERTED"; }
  Result<std::vector<uint32_t>> CandidateSentences(
      const std::vector<PathQuery>& paths) const override;
  size_t MemoryUsage() const override { return catalog_.MemoryUsage(); }

  const Table& table() const { return *p_; }

 private:
  InvertedIndex() = default;
  Catalog catalog_;
  Table* p_ = nullptr;
};

/// Label keys mentioned by a constraint, in the prefixed key space shared
/// by INVERTED and ADVINVERTED ("w:<word>", "l:<parse label>", "p:<pos>").
std::vector<std::string> ConstraintLabelKeys(const NodeConstraint& c);

}  // namespace koko

#endif  // KOKO_BASELINE_INVERTED_INDEX_H_

#ifndef KOKO_NLP_PIPELINE_H_
#define KOKO_NLP_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ner/entity_recognizer.h"
#include "text/document.h"

namespace koko {

/// Raw input document before annotation.
struct RawDocument {
  std::string title;
  std::string text;
};

/// \brief The preprocessing pipeline of Figure 2's "Parse text" stage.
///
/// Runs sentence splitting, tokenisation, POS tagging, dependency parsing,
/// and NER, producing the AnnotatedCorpus every index and query consumes.
/// Equivalent to the paper's spaCy/Google-NL preprocessing step.
class Pipeline {
 public:
  Pipeline();

  /// The recogniser is exposed so callers can register domain gazetteers
  /// (e.g. the Location dictionary used by the cafe query's excluding
  /// clause) before annotation.
  EntityRecognizer* recognizer() { return recognizer_.get(); }
  const EntityRecognizer& recognizer() const { return *recognizer_; }

  /// Annotates a single sentence (no sentence splitting).
  Sentence AnnotateSentence(const std::string& text) const;

  /// Splits and annotates a whole document.
  Document AnnotateDocument(const RawDocument& raw, uint32_t id) const;

  /// Annotates a batch of documents into a corpus with global sentence ids.
  AnnotatedCorpus AnnotateCorpus(const std::vector<RawDocument>& raw) const;

 private:
  std::unique_ptr<EntityRecognizer> recognizer_;
};

}  // namespace koko

#endif  // KOKO_NLP_PIPELINE_H_

#include "nlp/pipeline.h"

#include "parser/dep_parser.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace koko {

Pipeline::Pipeline() : recognizer_(std::make_unique<EntityRecognizer>()) {}

Sentence Pipeline::AnnotateSentence(const std::string& text) const {
  Sentence sentence;
  std::vector<std::string> words = Tokenizer::Tokenize(text);
  std::vector<PosTag> tags = PosTagger::Tag(words);
  sentence.tokens.reserve(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    Token tok;
    tok.text = std::move(words[i]);
    tok.pos = tags[i];
    sentence.tokens.push_back(std::move(tok));
  }
  DepParser::Parse(&sentence);
  recognizer_->Annotate(&sentence);
  return sentence;
}

Document Pipeline::AnnotateDocument(const RawDocument& raw, uint32_t id) const {
  Document doc;
  doc.id = id;
  doc.title = raw.title;
  for (const std::string& sent_text : SentenceSplitter::Split(raw.text)) {
    Sentence s = AnnotateSentence(sent_text);
    if (s.size() > 0) doc.sentences.push_back(std::move(s));
  }
  return doc;
}

AnnotatedCorpus Pipeline::AnnotateCorpus(const std::vector<RawDocument>& raw) const {
  AnnotatedCorpus corpus;
  corpus.docs.reserve(raw.size());
  for (uint32_t i = 0; i < raw.size(); ++i) {
    corpus.docs.push_back(AnnotateDocument(raw[i], i));
  }
  corpus.RebuildRefs();
  return corpus;
}

}  // namespace koko
